//! The model zoo: the three applications of the paper's Table 1.
//!
//! | Application          | Dataset   | Architecture | Variants                          |
//! |----------------------|-----------|--------------|-----------------------------------|
//! | Object Detection     | MS COCO   | YOLOv5       | YOLOv5l, YOLOv5x, YOLOv5x6        |
//! | Language Modeling    | SQuADv2   | ALBERT       | V2-base, V2-large, V2-xlarge, V2-xxlarge |
//! | Image Classification | ImageNet  | EfficientNet | B1, B3, B5, B7                    |
//!
//! Accuracy numbers are the published ones from the models' public
//! repositories, exactly as the paper uses them (Sec. 5.1). Parameter counts
//! and GFLOPs are from the same sources. Memory footprints, saturation
//! points and serial fractions are calibrated estimates documented in
//! DESIGN.md — they only shape latency/energy, not accuracy.

use crate::variant::{ModelFamily, ModelVariant, VariantId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's three inference applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Application {
    /// YOLOv5 object detection on MS COCO.
    ObjectDetection,
    /// ALBERT extractive QA on SQuAD v2.
    LanguageModeling,
    /// EfficientNet classification on ImageNet.
    ImageClassification,
}

impl Application {
    /// All applications in Table 1 order.
    pub const ALL: [Application; 3] = [
        Application::ObjectDetection,
        Application::LanguageModeling,
        Application::ImageClassification,
    ];

    /// The model family serving this application.
    pub fn family(self) -> ModelFamily {
        match self {
            Application::ObjectDetection => yolo_v5(),
            Application::LanguageModeling => albert_v2(),
            Application::ImageClassification => efficientnet(),
        }
    }

    /// Short label used in reports ("Detection", "Language",
    /// "Classification" — as in the paper's figures).
    pub fn label(self) -> &'static str {
        match self {
            Application::ObjectDetection => "Detection",
            Application::LanguageModeling => "Language",
            Application::ImageClassification => "Classification",
        }
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// YOLOv5 family (Ultralytics), COCO mAP50-95 from the public repository.
/// YOLOv5x6 runs at its published 1280 px resolution, hence its large
/// compute and activation footprint (it does not fit a 1g slice).
pub fn yolo_v5() -> ModelFamily {
    ModelFamily {
        architecture: "YOLOv5",
        dataset: "MS COCO",
        metric: "mAP50-95",
        variants: vec![
            ModelVariant {
                name: "YOLOv5l",
                id: VariantId(0),
                params_m: 46.5,
                gflops: 109.1,
                accuracy_pct: 49.0,
                weights_gb: 0.19,
                activations_gb: 1.4,
                saturation_units: 4.0,
                unit_efficiency: 0.65,
                serial_fraction: 0.09,
                overhead_secs: 0.009,
            },
            ModelVariant {
                name: "YOLOv5x",
                id: VariantId(1),
                params_m: 86.7,
                gflops: 205.7,
                accuracy_pct: 50.7,
                weights_gb: 0.35,
                activations_gb: 2.1,
                saturation_units: 6.0,
                unit_efficiency: 1.0,
                serial_fraction: 0.08,
                overhead_secs: 0.010,
            },
            ModelVariant {
                name: "YOLOv5x6",
                id: VariantId(2),
                params_m: 140.7,
                gflops: 839.2,
                accuracy_pct: 55.0,
                weights_gb: 0.56,
                activations_gb: 5.4,
                saturation_units: 7.0,
                unit_efficiency: 1.0,
                serial_fraction: 0.06,
                overhead_secs: 0.014,
            },
        ],
    }
}

/// ALBERT v2 family (Google), SQuAD v2 dev F1 from the ALBERT paper.
/// FLOPs estimated at sequence length 384; parameter sharing keeps weights
/// tiny but activations scale with hidden width.
pub fn albert_v2() -> ModelFamily {
    ModelFamily {
        architecture: "ALBERT",
        dataset: "SQuADv2",
        metric: "F1",
        variants: vec![
            ModelVariant {
                name: "ALBERT-V2-base",
                id: VariantId(0),
                params_m: 11.8,
                gflops: 22.0,
                accuracy_pct: 82.1,
                weights_gb: 0.05,
                activations_gb: 0.7,
                saturation_units: 2.0,
                unit_efficiency: 0.18,
                serial_fraction: 0.11,
                overhead_secs: 0.004,
            },
            ModelVariant {
                name: "ALBERT-V2-large",
                id: VariantId(1),
                params_m: 17.9,
                gflops: 78.0,
                accuracy_pct: 84.9,
                weights_gb: 0.07,
                activations_gb: 1.1,
                saturation_units: 3.0,
                unit_efficiency: 0.62,
                serial_fraction: 0.10,
                overhead_secs: 0.004,
            },
            ModelVariant {
                name: "ALBERT-V2-xlarge",
                id: VariantId(2),
                params_m: 58.9,
                gflops: 280.0,
                accuracy_pct: 87.4,
                weights_gb: 0.24,
                activations_gb: 2.2,
                saturation_units: 5.0,
                unit_efficiency: 0.75,
                serial_fraction: 0.08,
                overhead_secs: 0.005,
            },
            ModelVariant {
                name: "ALBERT-V2-xxlarge",
                id: VariantId(3),
                params_m: 223.1,
                gflops: 620.0,
                accuracy_pct: 90.2,
                weights_gb: 0.89,
                activations_gb: 3.3,
                saturation_units: 7.0,
                unit_efficiency: 1.0,
                serial_fraction: 0.065,
                overhead_secs: 0.006,
            },
        ],
    }
}

/// EfficientNet family (Google), ImageNet top-1 from the public PyTorch
/// implementation. Input resolution grows from 240 px (B1) to 600 px (B7),
/// which drives B7's activation footprint past the 1g slice's 5 GB.
pub fn efficientnet() -> ModelFamily {
    ModelFamily {
        architecture: "EfficientNet",
        dataset: "ImageNet",
        metric: "top-1",
        variants: vec![
            ModelVariant {
                name: "EfficientNet-B1",
                id: VariantId(0),
                params_m: 7.8,
                gflops: 0.70,
                accuracy_pct: 79.1,
                weights_gb: 0.03,
                activations_gb: 0.4,
                saturation_units: 1.5,
                unit_efficiency: 0.135,
                serial_fraction: 0.15,
                overhead_secs: 0.0035,
            },
            ModelVariant {
                name: "EfficientNet-B3",
                id: VariantId(1),
                params_m: 12.0,
                gflops: 1.8,
                accuracy_pct: 81.6,
                weights_gb: 0.05,
                activations_gb: 0.7,
                saturation_units: 2.5,
                unit_efficiency: 0.35,
                serial_fraction: 0.13,
                overhead_secs: 0.004,
            },
            ModelVariant {
                name: "EfficientNet-B5",
                id: VariantId(2),
                params_m: 30.0,
                gflops: 9.9,
                accuracy_pct: 83.6,
                weights_gb: 0.12,
                activations_gb: 1.7,
                saturation_units: 5.0,
                unit_efficiency: 0.8,
                serial_fraction: 0.10,
                overhead_secs: 0.005,
            },
            ModelVariant {
                name: "EfficientNet-B7",
                id: VariantId(3),
                params_m: 66.0,
                gflops: 37.0,
                accuracy_pct: 84.3,
                weights_gb: 0.26,
                activations_gb: 4.0,
                saturation_units: 7.0,
                unit_efficiency: 1.0,
                serial_fraction: 0.075,
                overhead_secs: 0.006,
            },
        ],
    }
}

/// Renders Table 1 of the paper as plain-text rows.
pub fn table1() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<22} {:<10} {:<13} {}",
        "Application", "Dataset", "Architecture", "Variants"
    )];
    for app in Application::ALL {
        let fam = app.family();
        let names: Vec<&str> = fam.variants.iter().map(|v| v.name).collect();
        rows.push(format!(
            "{:<22} {:<10} {:<13} {}",
            app.label(),
            fam.dataset,
            fam.architecture,
            names.join(", ")
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_mig::SliceType;

    #[test]
    fn table1_shape_matches_paper() {
        assert_eq!(yolo_v5().len(), 3);
        assert_eq!(albert_v2().len(), 4);
        assert_eq!(efficientnet().len(), 4);
        let rows = table1();
        assert_eq!(rows.len(), 4);
        assert!(rows[1].contains("YOLOv5x6"));
        assert!(rows[2].contains("ALBERT"));
        assert!(rows[3].contains("EfficientNet-B7"));
    }

    #[test]
    fn accuracy_monotone_in_size() {
        for app in Application::ALL {
            let fam = app.family();
            for pair in fam.variants.windows(2) {
                assert!(
                    pair[1].accuracy_pct > pair[0].accuracy_pct,
                    "{}: accuracy not monotone",
                    fam.architecture
                );
                assert!(
                    pair[1].gflops > pair[0].gflops,
                    "{}: FLOPs not monotone",
                    fam.architecture
                );
                assert!(
                    pair[1].params_m > pair[0].params_m,
                    "{}: params not monotone",
                    fam.architecture
                );
            }
        }
    }

    #[test]
    fn published_headline_numbers() {
        assert_eq!(efficientnet().largest().accuracy_pct, 84.3);
        assert_eq!(efficientnet().smallest().accuracy_pct, 79.1);
        assert_eq!(yolo_v5().largest().name, "YOLOv5x6");
        assert_eq!(albert_v2().largest().params_m, 223.1);
        assert_eq!(albert_v2().largest().accuracy_pct, 90.2);
        assert_eq!(yolo_v5().largest().accuracy_pct, 55.0);
    }

    #[test]
    fn oom_edges_exist() {
        // The paper notes not all models fit the 5 GB 1g slice; our zoo has
        // at least one such variant per large family.
        assert!(!yolo_v5().largest().fits(SliceType::G1));
        assert!(!efficientnet().largest().fits(SliceType::G1));
        // And every variant fits the full GPU.
        for app in Application::ALL {
            for v in &app.family().variants {
                assert!(v.fits(SliceType::G7), "{} does not fit 7g", v.name);
            }
        }
        // Every family's smallest variant fits the smallest slice, otherwise
        // CO2OPT would be undeployable.
        for app in Application::ALL {
            assert!(app.family().smallest().fits(SliceType::G1));
        }
    }

    #[test]
    fn saturation_and_serial_fractions_sane() {
        for app in Application::ALL {
            for v in &app.family().variants {
                assert!((1.0..=7.0).contains(&v.saturation_units), "{}", v.name);
                assert!((0.0..0.5).contains(&v.serial_fraction), "{}", v.name);
                assert!(v.overhead_secs > 0.0 && v.overhead_secs < 0.05);
                assert!((0.05..=1.0).contains(&v.unit_efficiency), "{}", v.name);
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Application::ObjectDetection.label(), "Detection");
        assert_eq!(
            Application::ImageClassification.to_string(),
            "Classification"
        );
    }
}
