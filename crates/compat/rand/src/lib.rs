//! Minimal stand-in for the slice of `rand` 0.8 that this workspace uses.
//!
//! `clover_simkit::SimRng` implements [`RngCore`] so it can compose with the
//! wider `rand` ecosystem; offline, only the trait definition itself is
//! needed. The signatures match `rand` 0.8 exactly, so replacing this stub
//! with the real crate is a manifest-only change.

use std::fmt;

/// Error type of fallible `RngCore` operations (mirrors `rand::Error`).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core uniform random number generator trait (mirrors
/// `rand::RngCore` 0.8).
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
