//! Marker-trait stand-in for `serde`.
//!
//! The build container cannot reach a crates registry, so this workspace
//! ships a minimal local `serde`: the [`Serialize`] / [`Deserialize`] traits
//! exist (with blanket impls) purely so that `#[derive(Serialize,
//! Deserialize)]` and `S: Serialize` bounds across the workspace compile
//! unchanged. No actual serialization is performed; swap this crate for the
//! real `serde` (the manifests already request the `derive` feature shape)
//! once network access exists.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`; blanket-implemented for all
/// types.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
