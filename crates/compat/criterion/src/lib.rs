//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! The container cannot reach a crates registry, so the benches under
//! `crates/bench/benches/` link against this minimal harness instead. It
//! keeps the same API shape (`Criterion`, `benchmark_group`, `Throughput`,
//! `black_box`, `criterion_group!`/`criterion_main!`) and does honest — if
//! statistically unsophisticated — wall-clock timing: a short calibration
//! pass sizes a measurement batch, then the median of several batches is
//! reported as ns/iter (plus derived element throughput when declared).
//!
//! Swap for the real `criterion` (same major API) once network access
//! exists; no bench source changes are needed.

use std::hint;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement batch.
const BATCH_TARGET: Duration = Duration::from_millis(60);
/// Number of measured batches; the median is reported.
const BATCHES: usize = 5;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared per-iteration workload, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the median ns/iter for the caller to report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: run until the batch target is met once.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= BATCH_TARGET || batch > 1 << 30 {
                break;
            }
            let grow = (BATCH_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                .ceil()
                .min(1024.0) as u64;
            batch = (batch * grow.max(2)).max(batch + 1);
        }
        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<44} {:>14.1} ns/iter", ns);
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_s = count as f64 / (ns * 1e-9);
        line.push_str(&format!("  ({per_s:>12.0} {unit}/s)"));
    }
    println!("{line}");
}

/// Top-level benchmark registry (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let name = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&name, b.ns_per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload of subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id.into());
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&name, b.ns_per_iter, self.throughput);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Mirrors `criterion::criterion_group!`: bundles target functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
