//! No-op `serde_derive` stand-in.
//!
//! The build container has no access to crates.io, so the workspace patches
//! `serde` with a local marker-trait stub (see `crates/compat/serde`). The
//! derives here accept the same attribute surface as the real macros and
//! expand to nothing; the blanket impls in the `serde` stub satisfy every
//! `Serialize`/`Deserialize` bound.

use proc_macro::TokenStream;

/// Expands to nothing; `serde`'s blanket impl covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde`'s blanket impl covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
