//! # Clover: carbon-aware ML inference serving
//!
//! A full reproduction of *"Clover: Toward Sustainable AI with Carbon-Aware
//! Machine Learning Inference Service"* (SC '23) in Rust, built on a
//! trace-driven discrete-event simulation of the paper's A100/MIG testbed.
//!
//! This façade crate re-exports the workspace crates:
//!
//! - [`simkit`] — discrete-event simulation kernel (clock, events, RNG, stats)
//! - [`carbon`] — carbon-intensity traces, monitoring, and accounting
//! - [`mig`] — Multi-Instance GPU substrate (slice types, 19 configs, power)
//! - [`models`] — model-variant zoo with latency/energy/accuracy models
//! - [`workload`] — traffic generation: arrival processes (Poisson, diurnal,
//!   MMPP, flash-crowd, trace replay), workload descriptors, demand forecasts
//! - [`serving`] — inference serving simulator (queue, dispatch, metrics)
//! - [`core`] — the Clover optimizer, controller, and competing schemes
//! - [`router`] — geo-distributed serving: regional fleets and the global
//!   carbon-aware traffic router with its pluggable policy registry
//! - [`telemetry`] — determinism-safe observability: metric registry
//!   (JSON / Prometheus exposition), control-plane decision journal
//!   (JSONL), and phase profiling
//!
//! ## Quickstart
//!
//! ```
//! use clover::core::experiment::{Experiment, ExperimentConfig};
//! use clover::core::schedulers::SchemeKind;
//! use clover::carbon::regions::Region;
//! use clover::models::zoo::Application;
//!
//! let config = ExperimentConfig::builder(Application::ImageClassification)
//!     .scheme(SchemeKind::Clover)
//!     .region(Region::CisoMarch)
//!     .n_gpus(2)
//!     .horizon_hours(2.0)
//!     .sim_window_s(20.0)
//!     .seed(7)
//!     .build();
//! let outcome = Experiment::new(config).run();
//! assert!(outcome.carbon_saving_pct > 0.0);
//! ```

pub use clover_carbon as carbon;
pub use clover_core as core;
pub use clover_mig as mig;
pub use clover_models as models;
pub use clover_router as router;
pub use clover_serving as serving;
pub use clover_simkit as simkit;
pub use clover_telemetry as telemetry;
pub use clover_workload as workload;
