//! Pins the intra-epoch DES sharding guarantees end to end: a full-epoch
//! experiment cell split into K shards produces **byte-identical** outcomes
//! at every thread count (1, 2, 4, 8) and every shard count (1, 2, 4), for
//! all five schemes — and every shard seam closes its conservation law
//! exactly. Together with `tests/par_determinism.rs` (grid-level fan-out)
//! this is the regression tripwire for the parallel engine: LPT dispatch
//! may reorder *claiming*, sharding may reorder *execution*, but neither is
//! allowed to move a single bit of output.

use clover::core::control::Fidelity;
use clover::core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;
use clover::models::PerfModel;
use clover::serving::{Deployment, ServingCarry, ServingSim};
use clover::simkit::SimDuration;
use clover::workload::{PoissonProcess, WorkloadKind};

/// One continuous full-epoch cell: the only fidelity the sharded engine
/// serves (representative windows are too small to shard).
fn cfg(scheme: SchemeKind, shards: usize) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(scheme)
        .workload(WorkloadKind::flash_crowd())
        .fidelity(Fidelity::FullEpoch)
        .control_epoch_s(300.0)
        .n_gpus(4)
        .horizon_hours(0.25)
        .seed(2023)
        .des_shards(shards)
        .build()
}

/// The full matrix this suite pins: all five schemes × shard counts 1/2/4.
fn grid() -> Vec<ExperimentConfig> {
    SchemeKind::ALL
        .into_iter()
        .flat_map(|scheme| [1usize, 2, 4].map(|shards| cfg(scheme.clone(), shards)))
        .collect()
}

/// The whole scheme × shard-count matrix fanned out as one grid (LPT
/// claiming over heterogeneous cells) reproduces the serial digests at
/// every thread count.
#[test]
fn sharded_grid_is_bit_identical_across_thread_counts() {
    let reference: Vec<u64> = Experiment::run_cells(grid(), 1)
        .iter()
        .map(ExperimentOutcome::digest)
        .collect();
    for threads in [2, 4, 8] {
        let digests: Vec<u64> = Experiment::run_cells(grid(), threads)
            .iter()
            .map(ExperimentOutcome::digest)
            .collect();
        assert_eq!(reference, digests, "{threads} threads diverged");
    }
}

/// A single sharded cell run alone gets the grid's whole thread budget as
/// shard threads (`shard_thread_budget = threads / cells`), so this sweep
/// exercises genuinely concurrent shard execution through the full
/// experiment stack — and must still match the 1-thread reference bit for
/// bit.
#[test]
fn concurrent_shard_execution_matches_serial() {
    for scheme in SchemeKind::ALL {
        let single = vec![cfg(scheme.clone(), 4)];
        let reference = Experiment::run_cells(single.clone(), 1)[0].digest();
        for threads in [2, 4, 8] {
            let got = Experiment::run_cells(single.clone(), threads)[0].digest();
            assert_eq!(reference, got, "{scheme}: {threads} shard threads diverged");
        }
    }
}

/// Shard count is part of the experiment's physics (independent per-shard
/// service streams, per-shard queue bounds): K=1 and K=4 are different —
/// deterministically different — experiments. This pins that nobody
/// "optimizes" the sharded path into silently reusing the unsharded one.
#[test]
fn shard_count_is_part_of_the_configuration() {
    let unsharded = Experiment::run_cells(vec![cfg(SchemeKind::Clover, 1)], 1)[0].digest();
    let sharded = Experiment::run_cells(vec![cfg(SchemeKind::Clover, 4)], 1)[0].digest();
    assert_ne!(
        unsharded, sharded,
        "4-shard run unexpectedly reproduced the unsharded digest"
    );
}

/// Every shard seam of every epoch closes its conservation law exactly:
/// `carried_in + arrived == served + dropped + carried_out`, and the
/// per-shard arrivals sum to the window's.
#[test]
fn every_shard_seam_closes_conservation() {
    let family = Application::ImageClassification.family();
    let deployment = Deployment::base(&family, 4);
    let mut sim = ServingSim::new(family, PerfModel::a100(), deployment, 7);
    sim.set_intra_epoch_shards(4);
    sim.set_shard_threads(Some(4));
    let mut carry = ServingCarry::default();
    for epoch in 0..6 {
        let mut arrivals = PoissonProcess::new(500.0);
        let (w, next) =
            sim.run_epoch_continuous(&mut arrivals, SimDuration::from_secs(45.0), carry);
        carry = next;
        assert_eq!(w.shard_seams.len(), 4, "epoch {epoch}: seam count");
        let mut arrived = 0;
        for seam in &w.shard_seams {
            assert_eq!(
                seam.leak(),
                0,
                "epoch {epoch}, shard {}: conservation leak",
                seam.shard
            );
            arrived += seam.arrived;
        }
        assert_eq!(arrived, w.arrived, "epoch {epoch}: arrivals split");
    }
}
