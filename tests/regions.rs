//! Integration tests for the regional carbon-trace generators — the
//! ground the geo-router stands on. The single-region figures pinned the
//! generators implicitly through experiment digests; the router samples
//! all three traces in one run, so their contracts get pinned explicitly:
//! determinism per seed, the documented intensity envelopes, and
//! distinct per-region streams from a shared experiment seed.

use clover::carbon::regions::Region;

/// The documented floor/ceiling envelope for each region's generator.
fn envelope(region: Region) -> (f64, f64) {
    match region {
        Region::CisoMarch => (95.0, 360.0),
        Region::CisoSeptember => (100.0, 310.0),
        Region::EsoMarch => (50.0, 305.0),
    }
}

#[test]
fn traces_are_deterministic_per_seed() {
    for region in Region::ALL {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = region.trace(72, seed);
            let b = region.trace(72, seed);
            assert_eq!(a.len(), b.len());
            for ((ta, va), (tb, vb)) in a.samples().zip(b.samples()) {
                assert_eq!(ta, tb);
                assert_eq!(va, vb, "{region}: seed {seed} not reproducible");
            }
        }
    }
}

#[test]
fn intensities_stay_inside_the_documented_envelope() {
    for region in Region::ALL {
        let (floor, ceil) = envelope(region);
        for seed in 0..32u64 {
            let t = region.trace(96, seed);
            for (_, v) in t.samples() {
                let g = v.g_per_kwh();
                assert!(
                    (floor..=ceil).contains(&g),
                    "{region}: seed {seed} produced {g} outside [{floor}, {ceil}]"
                );
                assert!(g > 0.0, "carbon intensity is never negative");
            }
        }
    }
}

#[test]
fn trace_covers_the_requested_hours_inclusive() {
    for hours in [1usize, 24, 48, 200] {
        let t = Region::CisoMarch.trace(hours, 7);
        assert_eq!(t.len(), hours + 1, "hourly samples, both endpoints");
    }
}

#[test]
fn regions_draw_distinct_streams_from_one_experiment_seed() {
    // The router hands every fleet the *same* experiment seed; the
    // per-region stream tags must still decorrelate the noise, or three
    // "different" grids would wiggle in lockstep.
    let seed = 1234;
    for (i, a) in Region::ALL.iter().enumerate() {
        for b in &Region::ALL[i + 1..] {
            let ta = a.trace(48, seed);
            let tb = b.trace(48, seed);
            let near = ta
                .samples()
                .zip(tb.samples())
                .filter(|((_, x), (_, y))| (x.g_per_kwh() - y.g_per_kwh()).abs() < 1.0)
                .count();
            assert!(
                near < 10,
                "{a} and {b} nearly coincide at {near}/49 samples under seed {seed}"
            );
        }
    }
}

#[test]
fn eval_and_motivation_traces_are_views_of_the_generator() {
    let seed = 9;
    let eval = Region::EsoMarch.eval_trace(seed);
    let direct = Region::EsoMarch.trace(48, seed);
    for ((_, a), (_, b)) in eval.samples().zip(direct.samples()) {
        assert_eq!(a, b, "eval_trace must be trace(48, ..)");
    }
    assert_eq!(Region::EsoMarch.motivation_trace(seed).len(), 14 * 24 + 1);
}
