//! Property-based tests of Clover's graph machinery, spanning
//! `clover-core`, `clover-serving`, `clover-mig` and `clover-models`.

use clover::core::graph::ConfigGraph;
use clover::core::neighbors::NeighborSampler;
use clover::core::schedulers::random_raw_deployment;
use clover::mig::{Packer, Partitioning};
use clover::models::zoo::Application;
use clover::simkit::SimRng;
use proptest::prelude::*;

fn app_strategy() -> impl Strategy<Value = Application> {
    prop_oneof![
        Just(Application::ObjectDetection),
        Just(Application::LanguageModeling),
        Just(Application::ImageClassification),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GED is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn ged_is_a_metric(app in app_strategy(), seed in 0u64..1_000, n_gpus in 1usize..8) {
        let family = app.family();
        let mut rng = SimRng::new(seed);
        let a = ConfigGraph::from_deployment(&family, &random_raw_deployment(&family, n_gpus, &mut rng));
        let b = ConfigGraph::from_deployment(&family, &random_raw_deployment(&family, n_gpus, &mut rng));
        let c = ConfigGraph::from_deployment(&family, &random_raw_deployment(&family, n_gpus, &mut rng));
        prop_assert_eq!(a.ged(&a), 0);
        prop_assert_eq!(a.ged(&b), b.ged(&a));
        prop_assert!(a.ged(&c) <= a.ged(&b) + b.ged(&c));
    }

    /// The graph's total weight equals the instance count, and its census
    /// equals the deployment's partitioning census.
    #[test]
    fn graph_is_consistent_with_deployment(app in app_strategy(), seed in 0u64..1_000, n_gpus in 1usize..8) {
        let family = app.family();
        let mut rng = SimRng::new(seed);
        let d = random_raw_deployment(&family, n_gpus, &mut rng);
        let g = ConfigGraph::from_deployment(&family, &d);
        prop_assert_eq!(g.total_weight() as usize, d.n_instances());
        prop_assert_eq!(g.census(), d.census());
    }

    /// Graph additivity: the graph of two clusters equals the sum of their
    /// graphs (paper Sec. 4.2's scaling argument).
    #[test]
    fn graph_additivity(app in app_strategy(), seed in 0u64..1_000) {
        let family = app.family();
        let mut rng = SimRng::new(seed);
        let a = random_raw_deployment(&family, 3, &mut rng);
        let b = random_raw_deployment(&family, 2, &mut rng);
        let mut sum = ConfigGraph::from_deployment(&family, &a);
        sum.add(&ConfigGraph::from_deployment(&family, &b));
        prop_assert_eq!(
            sum.total_weight() as usize,
            a.n_instances() + b.n_instances()
        );
        let mut back = sum.clone();
        back.subtract(&ConfigGraph::from_deployment(&family, &b));
        prop_assert_eq!(back, ConfigGraph::from_deployment(&family, &a));
    }

    /// Every sampled neighbor stays within the paper's GED threshold of 4,
    /// is OOM-valid, and preserves the GPU count.
    #[test]
    fn neighbors_bounded_and_valid(app in app_strategy(), seed in 0u64..1_000, n_gpus in 1usize..8) {
        let family = app.family();
        let mut rng = SimRng::new(seed);
        let center = random_raw_deployment(&family, n_gpus, &mut rng);
        let center_graph = ConfigGraph::from_deployment(&family, &center);
        let sampler = NeighborSampler::default();
        if let Some(neighbor) = sampler.sample(&family, &center, &mut rng) {
            let g = ConfigGraph::from_deployment(&family, &neighbor);
            let d = center_graph.ged(&g);
            prop_assert!((1..=4).contains(&d), "GED {} out of bounds", d);
            prop_assert_eq!(neighbor.n_gpus(), n_gpus);
            for (v, s) in neighbor.instances() {
                prop_assert!(family.variant(v).fits(s));
            }
        }
    }

    /// Any census that comes from a real partitioning decomposes back into
    /// valid per-GPU configurations with the same census.
    #[test]
    fn census_round_trips_through_packer(app in app_strategy(), seed in 0u64..1_000, n_gpus in 1usize..8) {
        let family = app.family();
        let mut rng = SimRng::new(seed);
        let d = random_raw_deployment(&family, n_gpus, &mut rng);
        let census = d.census();
        let configs = Packer::new()
            .decompose(&census, n_gpus)
            .expect("census of a real partitioning must decompose");
        prop_assert_eq!(Partitioning::new(configs).census(), census);
    }
}
