//! Property-based tests of Clover's graph machinery, spanning
//! `clover-core`, `clover-serving`, `clover-mig` and `clover-models`.
//!
//! Written as deterministic seed sweeps (the container has no registry
//! access for a property-testing framework): each test drives the same
//! invariant across a grid of applications, seeds, and cluster sizes.

use clover::core::graph::ConfigGraph;
use clover::core::neighbors::NeighborSampler;
use clover::core::schedulers::random_raw_deployment;
use clover::mig::{Packer, Partitioning};
use clover::models::zoo::Application;
use clover::simkit::SimRng;

const APPS: [Application; 3] = [
    Application::ObjectDetection,
    Application::LanguageModeling,
    Application::ImageClassification,
];

/// The sweep grid: (app, seed, n_gpus) cases, deterministic.
fn cases() -> impl Iterator<Item = (Application, u64, usize)> {
    APPS.into_iter()
        .flat_map(|app| (0u64..24).map(move |seed| (app, seed * 41 + 7, 1 + (seed as usize % 7))))
}

/// GED is a metric: identity, symmetry, triangle inequality.
#[test]
fn ged_is_a_metric() {
    for (app, seed, n_gpus) in cases() {
        let family = app.family();
        let mut rng = SimRng::new(seed);
        let a = ConfigGraph::from_deployment(
            &family,
            &random_raw_deployment(&family, n_gpus, &mut rng),
        );
        let b = ConfigGraph::from_deployment(
            &family,
            &random_raw_deployment(&family, n_gpus, &mut rng),
        );
        let c = ConfigGraph::from_deployment(
            &family,
            &random_raw_deployment(&family, n_gpus, &mut rng),
        );
        assert_eq!(a.ged(&a), 0);
        assert_eq!(a.ged(&b), b.ged(&a));
        assert!(a.ged(&c) <= a.ged(&b) + b.ged(&c));
    }
}

/// The graph's total weight equals the instance count, and its census
/// equals the deployment's partitioning census.
#[test]
fn graph_is_consistent_with_deployment() {
    for (app, seed, n_gpus) in cases() {
        let family = app.family();
        let mut rng = SimRng::new(seed);
        let d = random_raw_deployment(&family, n_gpus, &mut rng);
        let g = ConfigGraph::from_deployment(&family, &d);
        assert_eq!(g.total_weight() as usize, d.n_instances());
        assert_eq!(g.census(), d.census());
    }
}

/// Graph additivity: the graph of two clusters equals the sum of their
/// graphs (paper Sec. 4.2's scaling argument).
#[test]
fn graph_additivity() {
    for (app, seed, _) in cases() {
        let family = app.family();
        let mut rng = SimRng::new(seed);
        let a = random_raw_deployment(&family, 3, &mut rng);
        let b = random_raw_deployment(&family, 2, &mut rng);
        let mut sum = ConfigGraph::from_deployment(&family, &a);
        sum.add(&ConfigGraph::from_deployment(&family, &b));
        assert_eq!(
            sum.total_weight() as usize,
            a.n_instances() + b.n_instances()
        );
        let mut back = sum.clone();
        back.subtract(&ConfigGraph::from_deployment(&family, &b));
        assert_eq!(back, ConfigGraph::from_deployment(&family, &a));
    }
}

/// Every sampled neighbor stays within the paper's GED threshold of 4,
/// is OOM-valid, and preserves the GPU count.
#[test]
fn neighbors_bounded_and_valid() {
    for (app, seed, n_gpus) in cases() {
        let family = app.family();
        let mut rng = SimRng::new(seed);
        let center = random_raw_deployment(&family, n_gpus, &mut rng);
        let center_graph = ConfigGraph::from_deployment(&family, &center);
        let sampler = NeighborSampler::default();
        if let Some(neighbor) = sampler.sample(&family, &center, &mut rng) {
            let g = ConfigGraph::from_deployment(&family, &neighbor);
            let d = center_graph.ged(&g);
            assert!((1..=4).contains(&d), "GED {d} out of bounds");
            assert_eq!(neighbor.n_gpus(), n_gpus);
            for (v, s) in neighbor.instances() {
                assert!(family.variant(v).fits(s));
            }
        }
    }
}

/// Any census that comes from a real partitioning decomposes back into
/// valid per-GPU configurations with the same census.
#[test]
fn census_round_trips_through_packer() {
    for (app, seed, n_gpus) in cases() {
        let family = app.family();
        let mut rng = SimRng::new(seed);
        let d = random_raw_deployment(&family, n_gpus, &mut rng);
        let census = d.census();
        let configs = Packer::new()
            .decompose(&census, n_gpus)
            .expect("census of a real partitioning must decompose");
        assert_eq!(Partitioning::new(configs).census(), census);
    }
}
