//! Pins the parallel engine's core guarantee: an experiment grid fanned out
//! over `par_map` produces outcomes **byte-identical** to the serial run,
//! for every scheme and across seeds. Every cell derives all of its
//! randomness from its own config seed, so thread interleaving has nothing
//! it could perturb — this suite is the regression tripwire for anyone who
//! introduces shared mutable state into the experiment path.

use clover::core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;

const SEEDS: [u64; 3] = [3, 17, 2023];

fn cfg(scheme: SchemeKind, seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(scheme)
        .n_gpus(2)
        .horizon_hours(2.0)
        .sim_window_s(10.0)
        .seed(seed)
        .build()
}

/// The full grid this suite pins: all five schemes × three seeds.
fn grid() -> Vec<ExperimentConfig> {
    SchemeKind::ALL
        .into_iter()
        .flat_map(|scheme| SEEDS.into_iter().map(move |seed| cfg(scheme.clone(), seed)))
        .collect()
}

fn assert_outcomes_identical(a: &ExperimentOutcome, b: &ExperimentOutcome, label: &str) {
    // Spot-check the headline numbers with exact float equality first (for
    // readable failures), then pin everything through the digest.
    assert_eq!(a.total_carbon_g, b.total_carbon_g, "{label}: carbon");
    assert_eq!(a.base_carbon_g, b.base_carbon_g, "{label}: base carbon");
    assert_eq!(a.p95_s, b.p95_s, "{label}: p95");
    assert_eq!(a.accuracy_pct, b.accuracy_pct, "{label}: accuracy");
    assert_eq!(a.served_scaled, b.served_scaled, "{label}: served");
    assert_eq!(a.sim_events, b.sim_events, "{label}: events");
    assert_eq!(a.evals_total(), b.evals_total(), "{label}: evals");
    assert_eq!(
        a.optimization_time_s, b.optimization_time_s,
        "{label}: opt time"
    );
    assert_eq!(a.digest(), b.digest(), "{label}: digest");
}

/// Parallel `run_cells` equals the serial reference for all five schemes
/// and three seeds each — outcome for outcome, bit for bit.
#[test]
fn par_map_grid_is_bit_identical_to_serial() {
    let serial = Experiment::run_cells(grid(), 1);
    let parallel = Experiment::run_cells(grid(), 4);
    assert_eq!(serial.len(), parallel.len());
    let labels: Vec<String> = SchemeKind::ALL
        .into_iter()
        .flat_map(|scheme| {
            SEEDS
                .into_iter()
                .map(move |seed| format!("{scheme}/{seed}"))
        })
        .collect();
    for ((a, b), label) in serial.iter().zip(parallel.iter()).zip(labels.iter()) {
        assert_outcomes_identical(a, b, label);
    }
}

/// The multi-seed entry point honors seed order and matches per-cell
/// serial construction.
#[test]
fn run_many_matches_individual_runs() {
    let base = cfg(SchemeKind::Clover, 0);
    let outs = Experiment::run_many(&base, &SEEDS, 4);
    assert_eq!(outs.len(), SEEDS.len());
    for (seed, out) in SEEDS.into_iter().zip(outs.iter()) {
        let reference = Experiment::new(cfg(SchemeKind::Clover, seed)).run();
        assert_outcomes_identical(&reference, out, &format!("seed {seed}"));
    }
    // Distinct seeds really are distinct experiments.
    assert_ne!(outs[0].digest(), outs[1].digest());
}

/// Thread count is irrelevant to the result: 2, 3 and 8 workers all
/// reproduce the same digests.
#[test]
fn any_thread_count_gives_the_same_digests() {
    let reference: Vec<u64> = Experiment::run_cells(grid(), 1)
        .iter()
        .map(ExperimentOutcome::digest)
        .collect();
    for threads in [2, 3, 8] {
        let digests: Vec<u64> = Experiment::run_cells(grid(), threads)
            .iter()
            .map(ExperimentOutcome::digest)
            .collect();
        assert_eq!(reference, digests, "{threads} threads diverged");
    }
}
