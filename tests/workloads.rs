//! End-to-end tests of the workload subsystem: every scheduling scheme runs
//! to completion under every traffic scenario, runs are deterministic given
//! a seed, and the default Poisson path is unchanged by the refactor.

use clover::core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;
use clover::models::PerfModel;
use clover::serving::{Deployment, ServingSim};
use clover::simkit::SimDuration;
use clover::workload::{ArrivalTrace, PoissonProcess, WorkloadKind};

/// A replayable trace long enough to cover the test horizon when looping:
/// one bursty minute, one quiet minute, ~0.9 relative rate.
fn test_trace() -> ArrivalTrace {
    let mut times: Vec<f64> = (0..80).map(|i| i as f64 * 0.75).collect();
    times.extend((0..28).map(|i| 60.0 + i as f64 * 2.1));
    ArrivalTrace::new(times, 120.0)
}

/// The five scenario kinds of the acceptance matrix.
fn all_kinds() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Poisson,
        WorkloadKind::diurnal(),
        WorkloadKind::mmpp(),
        WorkloadKind::flash_crowd(),
        WorkloadKind::Replay {
            trace: test_trace(),
            looping: true,
        },
    ]
}

fn run(scheme: SchemeKind, kind: WorkloadKind, seed: u64) -> ExperimentOutcome {
    let cfg = ExperimentConfig::builder(Application::ImageClassification)
        .scheme(scheme)
        .workload(kind)
        .n_gpus(2)
        .horizon_hours(3.0)
        .sim_window_s(15.0)
        .seed(seed)
        .build();
    Experiment::new(cfg).run()
}

/// The full acceptance matrix: 5 schemes × 5 workload kinds all complete
/// with sane outcomes.
#[test]
fn all_schemes_complete_under_all_workloads() {
    for kind in all_kinds() {
        for scheme in SchemeKind::ALL {
            let out = run(scheme.clone(), kind.clone(), 21);
            assert!(
                out.served_scaled > 0.0,
                "{scheme} under {}: nothing served",
                kind.label()
            );
            assert!(out.total_carbon_g > 0.0, "{scheme} under {}", kind.label());
            assert!(out.base_carbon_g > 0.0, "{scheme} under {}", kind.label());
            assert_eq!(out.timeline.len(), 3);
            assert_eq!(out.workload, kind.label());
            assert!(
                out.p95_s.is_finite() && out.p95_s > 0.0,
                "{scheme} under {}: p95 {}",
                kind.label(),
                out.p95_s
            );
        }
    }
}

/// Identical seeds reproduce identical outcomes for every workload kind
/// (the carbon-aware search included).
#[test]
fn workload_experiments_are_deterministic() {
    for kind in all_kinds() {
        let a = run(SchemeKind::Clover, kind.clone(), 33);
        let b = run(SchemeKind::Clover, kind.clone(), 33);
        assert_eq!(a.total_carbon_g, b.total_carbon_g, "{}", kind.label());
        assert_eq!(a.p95_s, b.p95_s, "{}", kind.label());
        assert_eq!(a.evals_total(), b.evals_total(), "{}", kind.label());
        assert_eq!(a.served_scaled, b.served_scaled, "{}", kind.label());
    }
}

/// The default config (no workload set) and an explicit Poisson workload
/// are the same experiment, bit for bit.
#[test]
fn default_config_is_poisson_and_unchanged() {
    let default_cfg = ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::Clover)
        .n_gpus(2)
        .horizon_hours(3.0)
        .sim_window_s(15.0)
        .seed(5)
        .build();
    assert_eq!(default_cfg.workload, WorkloadKind::Poisson);
    let explicit = run(SchemeKind::Clover, WorkloadKind::Poisson, 5);
    let default_out = Experiment::new(default_cfg).run();
    assert_eq!(default_out.total_carbon_g, explicit.total_carbon_g);
    assert_eq!(default_out.p95_s, explicit.p95_s);
    assert_eq!(default_out.evals_total(), explicit.evals_total());
}

/// The legacy rate-based serving API and the arrival-process API produce
/// identical windows for Poisson traffic: they are one code path, so the
/// default scenario cannot drift from the generic one. (This pins API
/// equivalence, not cross-version seed stability — splitting arrival and
/// service randomness onto sub-streams re-dealt seeded draws once at the
/// refactor itself.)
#[test]
fn poisson_rate_api_and_process_api_are_one_path() {
    let family = Application::ImageClassification.family();
    let d = Deployment::base(&family, 2);
    let mut legacy = ServingSim::new(family.clone(), PerfModel::a100(), d.clone(), 2024);
    let mut generic = ServingSim::new(family.clone(), PerfModel::a100(), d, 2024);
    let window = SimDuration::from_secs(30.0);
    let warmup = SimDuration::from_secs(3.0);
    let wa = legacy.run_window(150.0, window, warmup);
    let mut p = PoissonProcess::new(150.0);
    let wb = generic.run_window_with(&mut p, window, warmup);
    assert_eq!(wa.arrived, wb.arrived);
    assert_eq!(wa.served, wb.served);
    assert_eq!(wa.dropped, wb.dropped);
    assert_eq!(wa.mean_latency_s, wb.mean_latency_s);
    assert_eq!(wa.p95_latency_s, wb.p95_latency_s);
    assert_eq!(wa.dynamic_energy_j, wb.dynamic_energy_j);
    assert_eq!(wa.idle_energy_j, wb.idle_energy_j);
}

/// A non-looping trace that runs dry mid-horizon leaves later hours with
/// zero traffic; the experiment completes with NaN hour metrics instead of
/// panicking (regression: the objective used to be fed NaN energy).
#[test]
fn non_looping_trace_running_dry_is_survivable() {
    let short = ArrivalTrace::new(vec![1.0, 2.0, 3.0], 10.0);
    let out = run(
        SchemeKind::Base,
        WorkloadKind::Replay {
            trace: short,
            looping: false,
        },
        4,
    );
    assert_eq!(out.timeline.len(), 3);
    // Rescaling compresses the toy trace into the first fraction of a
    // second, so every measured hour is silent: per-request metrics are
    // NaN, and the run still completes with coherent bookkeeping.
    assert!(out.timeline.iter().all(|h| h.energy_per_request_j.is_nan()));
    assert!(out.timeline[2].objective_f.is_nan());
    assert_eq!(out.served_scaled, 0.0);
    assert!(out.total_carbon_g > 0.0, "idle+static power still burns");
}

/// Same dry-trace scenario under a scheme that actually searches: the
/// scheduler's planning rate is floored above zero, so candidate
/// evaluation windows stay well-defined after the trace runs out.
#[test]
fn searching_scheme_survives_a_dry_trace() {
    let short = ArrivalTrace::new(vec![1.0, 2.0, 3.0], 10.0);
    let cfg = ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::Clover)
        .workload(WorkloadKind::Replay {
            trace: short,
            looping: false,
        })
        .n_gpus(2)
        .horizon_hours(6.0)
        .sim_window_s(15.0)
        .seed(4)
        .build();
    let out = Experiment::new(cfg).run();
    assert_eq!(out.timeline.len(), 6);
}

/// Bursty traffic stresses the tail: under the same mean load, MMPP's p95
/// on a BASE deployment is no better than Poisson's.
#[test]
fn bursty_traffic_has_heavier_tails_than_poisson() {
    let poisson = run(SchemeKind::Base, WorkloadKind::Poisson, 77);
    let mmpp = run(SchemeKind::Base, WorkloadKind::mmpp(), 77);
    assert!(
        mmpp.p95_s >= poisson.p95_s,
        "mmpp p95 {} < poisson p95 {}",
        mmpp.p95_s,
        poisson.p95_s
    );
}
