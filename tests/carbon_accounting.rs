//! Integration tests of the carbon pipeline: traces → monitor → ledger →
//! physical-significance estimates.

use clover::carbon::estimate::SavingsEstimate;
use clover::carbon::{CarbonLedger, CarbonMonitor, CarbonTrace, Energy, Pue, Region};
use clover::simkit::{SimDuration, SimTime};

#[test]
fn ledger_matches_hand_computation_over_a_varying_trace() {
    let trace = CarbonTrace::hourly([100.0, 300.0, 200.0]);
    let mut ledger = CarbonLedger::new(trace, Pue::new(1.5));
    // 2000 W for 3 hours: 2 kWh IT/hour, 3 kWh facility/hour.
    ledger.record_power(SimTime::ZERO, SimDuration::from_hours(3.0), 2000.0);
    let expected = 3.0 * (100.0 + 300.0 + 200.0);
    assert!((ledger.carbon().grams() - expected).abs() < 1e-6);
    assert!((ledger.it_energy().kwh() - 6.0).abs() < 1e-9);
    assert!((ledger.facility_energy().kwh() - 9.0).abs() < 1e-9);
}

#[test]
fn lump_charging_and_power_charging_agree_within_an_hour() {
    let trace = Region::CisoMarch.eval_trace(4);
    let mut a = CarbonLedger::new(trace.clone(), Pue::PAPER_DEFAULT);
    let mut b = CarbonLedger::new(trace, Pue::PAPER_DEFAULT);
    let at = SimTime::from_hours(5.25);
    // Same energy, charged as a lump vs as constant power within one
    // trace step.
    a.record_energy_at(at, Energy::from_joules(3.6e6));
    b.record_power(at, SimDuration::from_mins(10.0), 6000.0);
    assert!((a.carbon().grams() - b.carbon().grams()).abs() < 1e-6);
}

#[test]
fn monitor_triggers_match_trace_structure() {
    for region in Region::ALL {
        let trace = region.eval_trace(99);
        let monitor = CarbonMonitor::with_default_threshold(trace);
        let triggers = monitor.trigger_times();
        assert!(
            triggers.len() >= 8,
            "{region}: only {} optimization triggers over 48 h",
            triggers.len()
        );
        // Triggers are strictly increasing.
        for pair in triggers.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}

#[test]
fn paper_estimate_numbers() {
    let est = SavingsEstimate::paper_scenario();
    assert!((est.daily_saving_kg - 169.25).abs() < 1.0);
    assert!((est.gasoline_car_km - 677.0).abs() < 10.0);
    assert!((est.coal_kg - 84.6).abs() < 1.0);
}

#[test]
fn trace_statistics_are_region_plausible() {
    let ciso = Region::CisoMarch.motivation_trace(1);
    let eso = Region::EsoMarch.motivation_trace(1);
    // CISO March has the deeper intra-day swings (solar duck curve).
    assert!(ciso.max_swing_within(SimDuration::from_hours(12.0)) > 200.0);
    // ESO reaches lower absolute intensity (wind-heavy grid).
    assert!(eso.min() < ciso.min());
}
