//! Integration tests for deterministic chaos: fault injection, degraded
//! fallbacks, and the determinism guarantees that make a resilience study
//! citable.
//!
//! Four properties are pinned here:
//!
//! 1. **Chaos off is bit-for-bit inert.** An explicit `ChaosConfig::off()`
//!    reproduces the pre-refactor digests recorded two redesigns ago — the
//!    chaos plumbing adds no drift to unfaulted runs.
//! 2. **Chaos on stays deterministic.** A faulted five-scheme grid
//!    produces byte-identical digests serial vs parallel: the faults are
//!    part of the experiment, not noise.
//! 3. **Conservation survives the faults.** At every epoch boundary of a
//!    faulted continuous run, `carried_in + arrived == served + dropped +
//!    carried_out` — requeued in-flight work is moved, never minted or
//!    destroyed.
//! 4. **A fully dead fleet degrades, it does not deadlock.** When every
//!    board is down, arrivals queue and shed at the bound; service resumes
//!    after repair, for every scheme.
//! 5. **Degraded carbon data is surfaced, not hidden.** A long feed gap
//!    puts the monitor into last-known-good and then blind fallback, and
//!    both show up as `fallback` journal events.

use clover::core::autoscale::ScalingPolicy;
use clover::core::chaos::{ChaosConfig, FaultPlan, FaultSpec};
use clover::core::control::Fidelity;
use clover::core::experiment::{Experiment, ExperimentConfig};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;
use clover::telemetry::TelemetrySpec;

/// The pre-refactor default-config digests (see `tests/control_plane.rs`
/// for provenance): `ImageClassification`, `n_gpus(4)`,
/// `horizon_hours(6.0)`, `sim_window_s(20.0)`, `seed(3)`.
const PRE_REFACTOR_QUICK: [(&str, u64); 5] = [
    ("BASE", 0xA581_0B01_2522_FA2F),
    ("CO2OPT", 0x7471_7784_D531_E3F4),
    ("BLOVER", 0x6D35_A9B2_DB9E_C166),
    ("CLOVER", 0x98C0_B8B2_36D4_3E08),
    ("ORACLE", 0xB87C_862C_AEAB_AD2C),
];

/// A faulted grid cell: harsh chaos, sub-hour epochs, continuous serving,
/// reactive fleet — the configuration where every chaos code path
/// (boundary diffs, mid-window kills, fallbacks, requeue) is live.
fn faulted(scheme: SchemeKind) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(scheme)
        .chaos(ChaosConfig::resilience(6.0))
        .scaling(ScalingPolicy::reactive())
        .control_epoch_s(600.0)
        .fidelity(Fidelity::FullEpoch)
        .n_gpus(4)
        .min_gpus(1)
        .horizon_hours(2.0)
        .seed(2023)
        .build()
}

#[test]
fn chaos_off_is_bit_identical_to_the_pre_refactor_pins() {
    for (name, expected) in PRE_REFACTOR_QUICK {
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::parse(name))
            .chaos(ChaosConfig::off())
            .n_gpus(4)
            .horizon_hours(6.0)
            .sim_window_s(20.0)
            .seed(3)
            .build();
        let out = Experiment::new(cfg).run();
        assert_eq!(
            out.digest(),
            expected,
            "{name}: chaos-off run drifted from the pre-refactor pin \
             (got 0x{:016X})",
            out.digest()
        );
    }
}

#[test]
fn faulted_grid_is_bit_identical_serial_vs_parallel() {
    let configs = || -> Vec<ExperimentConfig> {
        [
            SchemeKind::Base,
            SchemeKind::Co2Opt,
            SchemeKind::Blover,
            SchemeKind::Clover,
            SchemeKind::Oracle,
        ]
        .into_iter()
        .map(faulted)
        .collect()
    };
    let serial = Experiment::run_cells(configs(), 1);
    let parallel = Experiment::run_cells(configs(), 4);
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(
            s.digest(),
            p.digest(),
            "{}: faulted run diverged across thread counts \
             (serial 0x{:016X}, parallel 0x{:016X})",
            s.scheme,
            s.digest(),
            p.digest()
        );
    }
}

#[test]
fn conservation_holds_at_every_boundary_under_faults() {
    for out in Experiment::run_cells(
        [
            SchemeKind::Base,
            SchemeKind::Co2Opt,
            SchemeKind::Blover,
            SchemeKind::Clover,
            SchemeKind::Oracle,
        ]
        .into_iter()
        .map(faulted)
        .collect(),
        4,
    ) {
        let mut arrived = 0u64;
        let mut served = 0u64;
        let mut dropped = 0u64;
        for (i, h) in out.timeline.iter().enumerate() {
            arrived += h.arrived;
            served += h.served;
            dropped += h.dropped;
            assert_eq!(
                arrived,
                served + dropped + h.backlog,
                "{}: conservation broke at faulted epoch {i}",
                out.scheme
            );
        }
        assert!(arrived > 0, "{}: nothing arrived", out.scheme);
        assert!(
            out.served_scaled > 0.0,
            "{}: faulted run served nothing",
            out.scheme
        );
    }
}

#[test]
fn a_fully_dead_fleet_queues_sheds_and_recovers() {
    // Full-fleet brownouts: every board down for an hour at a time. The
    // plan is drawn from the seed alone, so first pin the fault geometry
    // this test depends on — at least one whole epoch with zero boards up,
    // and a later one back alive — then check the serving consequences.
    let n_gpus = 2usize;
    let epoch_s = 600.0;
    let horizon_hours = 6.0;
    let seed = 11u64;
    let chaos = ChaosConfig::off().with(FaultSpec::Brownouts {
        mtbf_hours: 1.0,
        duration_hours: 1.0,
        frac: 1.0,
    });
    let n_epochs = (horizon_hours * 3600.0 / epoch_s) as usize;
    let plan = FaultPlan::generate(&chaos, seed, n_gpus, n_epochs, epoch_s);
    let dead = (0..n_epochs).find(|e| plan.down_at(*e as f64 * epoch_s).len() == n_gpus);
    let dead = dead.expect("seed 11 must produce a full-fleet outage epoch");
    let alive_after = (dead..n_epochs)
        .find(|e| plan.down_at(*e as f64 * epoch_s).is_empty())
        .expect("the fleet must come back before the horizon ends");

    for scheme in [SchemeKind::Base, SchemeKind::Clover] {
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(scheme)
            .chaos(chaos.clone())
            .scaling(ScalingPolicy::reactive())
            .control_epoch_s(epoch_s)
            .fidelity(Fidelity::FullEpoch)
            .n_gpus(n_gpus)
            .min_gpus(1)
            .horizon_hours(horizon_hours)
            .seed(seed)
            .build();
        let out = Experiment::new(cfg).run();

        // The dead epoch: no capacity, arrivals still land — they queue
        // (backlog) or shed (dropped), they do not vanish and the run does
        // not hang.
        let h = &out.timeline[dead];
        assert_eq!(
            h.active_gpus, 0,
            "{}: fleet not dead at epoch {dead}",
            out.scheme
        );
        assert!(
            h.arrived > 0,
            "{}: no arrivals during the outage",
            out.scheme
        );
        assert!(
            h.backlog > 0 || h.dropped > 0,
            "{}: dead-fleet arrivals neither queued nor shed",
            out.scheme
        );

        // Recovery: boards return through the warming path (one
        // provisioning epoch after the repair boundary) and service
        // resumes.
        assert!(
            out.timeline[alive_after..]
                .iter()
                .any(|h| h.active_gpus > 0),
            "{}: fleet never recovered after epoch {alive_after}",
            out.scheme
        );
        assert!(
            out.timeline[alive_after..].iter().any(|h| h.served > 0),
            "{}: no requests served after repair",
            out.scheme
        );

        // And the law still closes across the outage.
        let mut arrived = 0u64;
        let mut served = 0u64;
        let mut dropped = 0u64;
        for (i, h) in out.timeline.iter().enumerate() {
            arrived += h.arrived;
            served += h.served;
            dropped += h.dropped;
            assert_eq!(
                arrived,
                served + dropped + h.backlog,
                "{}: conservation broke at epoch {i} across the outage",
                out.scheme
            );
        }
    }
}

#[test]
fn carbon_gaps_surface_as_fallback_journal_events() {
    // A feed that is dark most of the time: gaps arrive every ~2 h and
    // last ~10 h on average. Pin the geometry first — the run needs one
    // gap long enough to outlive the monitor's 2 h last-known-good cap —
    // then check that the plane journals both fallback modes.
    let seed = 5u64;
    let horizon_hours = 12.0;
    let chaos = ChaosConfig::off().with(FaultSpec::CarbonGaps {
        mtbf_hours: 2.0,
        duration_hours: 10.0,
    });
    let plan = FaultPlan::generate(&chaos, seed, 2, horizon_hours as usize, 3600.0);
    assert!(
        plan.carbon_gaps()
            .iter()
            .any(|(a, b)| b.as_secs() - a.as_secs() > 4.0 * 3600.0),
        "seed 5 must produce a gap outliving the 2 h age cap"
    );

    let cfg = ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::Base)
        .chaos(chaos)
        .n_gpus(2)
        .horizon_hours(horizon_hours)
        .seed(seed)
        .build();
    let mut pairs = Experiment::run_cells_with(vec![cfg], 1, TelemetrySpec::JOURNAL);
    let (_, report) = pairs.remove(0);
    let journal = report.journal.expect("journal enabled");
    let mode_count = |mode: &str| -> usize {
        journal
            .as_str()
            .lines()
            .filter(|l| {
                l.contains("\"event\":\"fallback\"") && l.contains(&format!("\"mode\":\"{mode}\""))
            })
            .count()
    };
    assert!(
        mode_count("stale") > 0,
        "no epoch planned on last-known-good carbon data"
    );
    assert!(
        mode_count("blind") > 0,
        "no epoch fell back to the reference intensity past the age cap"
    );
}

#[test]
fn region_outages_are_inert_for_single_cluster_experiments() {
    // `RegionOutage` is a router-level fault: a single-cluster experiment
    // has no regions to take dark, so carrying the spec must not perturb
    // the run — not even through RNG stream consumption.
    let with_outage = ChaosConfig::off().with(FaultSpec::RegionOutage {
        region: 0,
        start_h: 1.0,
        duration_h: 2.0,
    });
    let cfg = |chaos: ChaosConfig| {
        ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::Clover)
            .chaos(chaos)
            .n_gpus(4)
            .horizon_hours(6.0)
            .sim_window_s(20.0)
            .seed(3)
            .build()
    };
    let clean = Experiment::new(cfg(ChaosConfig::off())).run();
    let outaged = Experiment::new(cfg(with_outage)).run();
    assert_eq!(
        clean.digest(),
        outaged.digest(),
        "a RegionOutage spec must be a bit-identical no-op off the router"
    );
}
