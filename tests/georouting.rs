//! Integration tests for the geo-distributed router: determinism of
//! multi-region runs, global request conservation, outage failover, and
//! the open end of the routing-policy surface.
//!
//! Five properties are pinned here:
//!
//! 1. **Multi-region runs are reproducible.** The same `RouterConfig`
//!    produces byte-identical digests run to run, and a grid of router
//!    cells is byte-identical serial vs parallel — journals included.
//! 2. **Requests are conserved globally.** Over any run,
//!    `arrived == served + dropped + final backlog + in transit`, and the
//!    router's own per-epoch leak counters stay at exactly zero.
//! 3. **A region outage fails over, it does not lose work.** The dark
//!    region's backlog migrates to survivors, its weight pins to zero
//!    while it is down, and conservation still closes.
//! 4. **One region degenerates to the single-cluster shape.** A
//!    single-region "fleet" routes weight 1.0 to itself every epoch.
//! 5. **The policy surface is open.** A custom policy registered at
//!    runtime drives a full router run; re-registering a builtin name is
//!    rejected.

use clover::carbon::regions::Region;
use clover::core::autoscale::ScalingPolicy;
use clover::core::chaos::{ChaosConfig, FaultSpec};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;
use clover::router::{
    register_route_policy, try_make_route_policy, GlobalRouter, RouteCtx, RoutePolicy, RouterConfig,
};
use clover::telemetry::TelemetrySpec;

/// A small-but-live router cell: three regions, sub-hour epochs, reactive
/// fleets — every router code path (planning, serving, snapshots,
/// rebalancing) runs, in seconds of wall time.
fn quick(policy: &str) -> RouterConfig {
    RouterConfig::builder(Application::LanguageModeling)
        .policy(policy)
        .scheme(SchemeKind::Base)
        .scaling(ScalingPolicy::reactive())
        .control_epoch_s(600.0)
        .n_gpus_per_region(2)
        .min_gpus(1)
        .horizon_hours(4.0)
        .utilization(0.6)
        .sla_headroom(2.0)
        .seed(11)
        .build()
}

#[test]
fn same_config_reruns_are_bit_identical() {
    let a = GlobalRouter::new(quick("carbon-greedy")).run();
    let b = GlobalRouter::new(quick("carbon-greedy")).run();
    assert_eq!(
        a.digest(),
        b.digest(),
        "identical router configs must reproduce bit-identically"
    );
}

#[test]
fn router_grid_is_bit_identical_serial_vs_parallel() {
    let configs = || -> Vec<RouterConfig> {
        [
            "uniform",
            "smallest-queue",
            "carbon-greedy",
            "forecast-aware",
        ]
        .into_iter()
        .map(quick)
        .collect()
    };
    let serial = GlobalRouter::run_cells_with(configs(), 1, TelemetrySpec::JOURNAL);
    let parallel = GlobalRouter::run_cells_with(configs(), 4, TelemetrySpec::JOURNAL);
    for ((s, sr), (p, pr)) in serial.iter().zip(parallel.iter()) {
        assert_eq!(
            s.digest(),
            p.digest(),
            "{}: router run diverged across thread counts",
            s.policy
        );
        assert_eq!(
            sr.journal.as_ref().map(|j| j.as_str()),
            pr.journal.as_ref().map(|j| j.as_str()),
            "{}: decision journals diverged across thread counts",
            s.policy
        );
    }
}

#[test]
fn requests_are_conserved_globally() {
    for policy in ["uniform", "round-robin", "carbon-greedy"] {
        let out = GlobalRouter::new(quick(policy)).run();
        assert_eq!(out.conservation_leak, 0, "{policy}: serve-law leak");
        assert_eq!(out.boundary_leak, 0, "{policy}: boundary-law leak");
        let last = out.timeline.last().expect("nonempty timeline");
        assert_eq!(
            out.arrived,
            out.served + out.dropped + last.backlog + last.in_transit,
            "{policy}: arrivals not accounted for (arrived {}, served {}, \
             dropped {}, backlog {}, in transit {})",
            out.arrived,
            out.served,
            out.dropped,
            last.backlog,
            last.in_transit
        );
    }
}

#[test]
fn a_region_outage_fails_over_without_losing_work() {
    let mut cfg = quick("carbon-greedy");
    cfg.chaos = ChaosConfig::off().with(FaultSpec::RegionOutage {
        region: 1,
        start_h: 1.0,
        duration_h: 1.5,
    });
    let out = GlobalRouter::new(cfg).run();
    assert!(out.outage_epochs > 0, "the outage must register");
    assert!(
        out.migrated_requests > 0,
        "the drained backlog must migrate to survivors"
    );
    for pt in &out.timeline {
        if pt.down[1] {
            assert_eq!(
                pt.weights[1], 0.0,
                "epoch {}: a dark region must carry no traffic",
                pt.epoch
            );
        }
    }
    assert!(
        out.timeline.iter().any(|pt| pt.down[1]),
        "the timeline must record the dark epochs"
    );
    assert!(
        out.timeline.last().map(|pt| !pt.down[1]).unwrap(),
        "the region must come back before the horizon ends"
    );
    assert_eq!(
        out.conservation_leak, 0,
        "conservation must survive the outage"
    );
    assert_eq!(out.boundary_leak, 0, "boundary law must survive the outage");
}

#[test]
fn a_single_region_fleet_degenerates_to_weight_one() {
    let mut cfg = RouterConfig::builder(Application::LanguageModeling)
        .regions(vec![Region::EsoMarch])
        .policy("carbon-greedy")
        .scheme(SchemeKind::Base)
        .control_epoch_s(600.0)
        .n_gpus_per_region(2)
        .min_gpus(1)
        .horizon_hours(2.0)
        .utilization(0.6)
        .sla_headroom(2.0)
        .seed(5)
        .build();
    cfg.scaling = ScalingPolicy::Static;
    let out = GlobalRouter::new(cfg).run();
    assert!(out.served > 0, "a one-region fleet still serves");
    for pt in &out.timeline {
        assert_eq!(
            pt.weights,
            vec![1.0],
            "epoch {}: weight must be 1.0",
            pt.epoch
        );
    }
    assert_eq!(out.migrated_requests, 0, "nowhere to migrate to");
    assert_eq!(out.conservation_leak, 0);
}

/// Sends everything to the region with the lowest instantaneous
/// intensity — a deliberately extreme custom policy.
struct ChaseCleanest;

impl RoutePolicy for ChaseCleanest {
    fn name(&self) -> &str {
        "chase-cleanest"
    }

    fn weights(&mut self, ctx: &mut RouteCtx<'_>) -> Vec<f64> {
        let mut w = vec![0.0; ctx.regions.len()];
        let cleanest = ctx
            .regions
            .iter()
            .filter(|r| r.up)
            .min_by(|a, b| {
                a.ci_now_g_per_kwh
                    .partial_cmp(&b.ci_now_g_per_kwh)
                    .unwrap()
                    .then(a.index.cmp(&b.index))
            })
            .map(|r| r.index);
        if let Some(i) = cleanest {
            w[i] = 1.0;
        }
        w
    }
}

#[test]
fn the_policy_surface_is_open_and_guarded() {
    register_route_policy("chase-cleanest", || Box::new(ChaseCleanest))
        .expect("fresh name registers");
    let out = GlobalRouter::new(quick("chase-cleanest")).run();
    assert_eq!(out.policy, "chase-cleanest");
    assert!(out.served > 0);
    assert_eq!(out.conservation_leak, 0);
    // Exactly one region carries each epoch.
    for pt in &out.timeline {
        let live: Vec<f64> = pt.weights.iter().copied().filter(|&w| w > 0.0).collect();
        assert_eq!(live, vec![1.0], "epoch {}: winner-take-all", pt.epoch);
    }

    register_route_policy("uniform", || Box::new(ChaseCleanest))
        .expect_err("builtin names must not be shadowed");
    assert!(
        try_make_route_policy("no-such-policy").is_err(),
        "unknown names must not resolve"
    );
}
