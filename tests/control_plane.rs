//! Integration tests for the control-plane redesign.
//!
//! Three guarantees are pinned here:
//!
//! 1. **The refactor is invisible at the default configuration.** The
//!    digests below were recorded on the tree *before* the experiment's
//!    inner loop was extracted into `ControlPlane`/`EpochSchedule`/
//!    `Fidelity` and the scheduler trait was redesigned — the default
//!    (hourly epoch, representative window) must keep reproducing them
//!    bit for bit, for all five schemes.
//! 2. **The new degrees of freedom stay deterministic.** Sub-hour control
//!    epochs and `FullEpoch` fidelity produce serial == parallel digests
//!    across thread counts for all five schemes.
//! 3. **The scheme surface is genuinely open.** A scheme registered by
//!    name runs end to end from an ordinary `ExperimentConfig`; unknown
//!    names fail with a listing of what exists.

use clover::core::anneal::SaParams;
use clover::core::autoscale::ScalingPolicy;
use clover::core::control::{Fidelity, SearchBudget};
use clover::core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover::core::schedulers::{
    register_scheduler, registered_schemes, try_make_scheduler, Decision, Scheduler, SchedulerCtx,
    SchemeKind,
};
use clover::models::zoo::Application;
use clover::serving::Deployment;

/// Digests recorded before the control-plane extraction (commit 19339c8's
/// tree): `ExperimentConfig::builder(ImageClassification).scheme(s)
/// .n_gpus(4).horizon_hours(6.0).sim_window_s(20.0).seed(3)`.
const PRE_REFACTOR_QUICK: [(&str, u64); 5] = [
    ("BASE", 0xA581_0B01_2522_FA2F),
    ("CO2OPT", 0x7471_7784_D531_E3F4),
    ("BLOVER", 0x6D35_A9B2_DB9E_C166),
    ("CLOVER", 0x98C0_B8B2_36D4_3E08),
    ("ORACLE", 0xB87C_862C_AEAB_AD2C),
];

/// Same vintage: the `tests/par_determinism.rs` grid cell
/// (`n_gpus(2).horizon_hours(2.0).sim_window_s(10.0)`) per scheme × seed.
const PRE_REFACTOR_PAR: [(&str, u64, u64); 15] = [
    ("BASE", 3, 0x679B_42AC_F7F2_44E8),
    ("BASE", 17, 0x2A03_A8CF_4273_2C7E),
    ("BASE", 2023, 0xDF41_D576_90AB_9AC5),
    ("CO2OPT", 3, 0xB0D2_F4EA_61DA_C6F4),
    ("CO2OPT", 17, 0x30B5_5E07_368E_3026),
    ("CO2OPT", 2023, 0x646E_5485_08CC_48E3),
    ("BLOVER", 3, 0xD5F8_6113_E6A4_A3DF),
    ("BLOVER", 17, 0xDA7F_3991_5902_BA8E),
    ("BLOVER", 2023, 0xA142_D920_FBFC_0649),
    ("CLOVER", 3, 0x67F5_B0A3_9845_4711),
    ("CLOVER", 17, 0x1F23_DF73_E05A_C33A),
    ("CLOVER", 2023, 0xB37D_EC45_7DC0_A0B4),
    ("ORACLE", 3, 0xA9ED_FD3C_CD3C_36FB),
    ("ORACLE", 17, 0x0A02_646E_D2F2_442F),
    ("ORACLE", 2023, 0x1A2B_161C_6F12_E387),
];

#[test]
fn default_config_reproduces_pre_refactor_digests() {
    for (name, expected) in PRE_REFACTOR_QUICK {
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::parse(name))
            .n_gpus(4)
            .horizon_hours(6.0)
            .sim_window_s(20.0)
            .seed(3)
            .build();
        assert_eq!(cfg.control_epoch_s, 3600.0, "default cadence is hourly");
        let out = Experiment::new(cfg).run();
        assert_eq!(
            out.digest(),
            expected,
            "{name}: control-plane extraction changed the default-config numbers \
             (got 0x{:016X})",
            out.digest()
        );
    }
}

#[test]
fn default_grid_cells_reproduce_pre_refactor_digests() {
    for (name, seed, expected) in PRE_REFACTOR_PAR {
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::parse(name))
            .n_gpus(2)
            .horizon_hours(2.0)
            .sim_window_s(10.0)
            .seed(seed)
            .build();
        let out = Experiment::new(cfg).run();
        assert_eq!(
            out.digest(),
            expected,
            "{name}/{seed}: got 0x{:016X}",
            out.digest()
        );
    }
}

/// One cell of the sub-hour / fidelity grids: 20-minute control epochs
/// under a bursty workload.
fn epoch_cfg(scheme: SchemeKind, fidelity: Fidelity, seed: u64) -> ExperimentConfig {
    let builder = ExperimentConfig::builder(Application::ImageClassification)
        .scheme(scheme)
        .workload(clover::workload::WorkloadKind::flash_crowd())
        .n_gpus(2)
        .horizon_hours(2.0)
        .control_epoch_s(1200.0)
        .seed(seed);
    // `sim_window_s` is only legal under the representative fidelity.
    match fidelity {
        Fidelity::RepresentativeWindow { .. } => builder.sim_window_s(10.0).build(),
        Fidelity::FullEpoch => builder.fidelity(Fidelity::FullEpoch).build(),
    }
}

#[test]
fn sub_hour_epochs_run_all_schemes_with_finer_timelines() {
    for scheme in SchemeKind::ALL {
        let out = Experiment::new(epoch_cfg(
            scheme.clone(),
            Fidelity::RepresentativeWindow { window_s: 10.0 },
            7,
        ))
        .run();
        // 2 h of 20-minute epochs = 6 timeline entries, 3 per trace hour.
        assert_eq!(out.timeline.len(), 6, "{scheme}");
        assert_eq!(out.control_epoch_s, 1200.0);
        assert_eq!(out.fidelity, "window");
        assert_eq!(out.timeline[2].hour, 0, "{scheme}: epoch 2 is in hour 0");
        assert_eq!(out.timeline[3].hour, 1, "{scheme}: epoch 3 is in hour 1");
        assert!((out.timeline[1].t_hours - 1.0 / 3.0).abs() < 1e-12);
        // Carbon intensity is held per trace hour across sub-hour epochs.
        assert_eq!(out.timeline[0].ci_g_per_kwh, out.timeline[2].ci_g_per_kwh);
        assert!(out.served_scaled > 0.0, "{scheme}: nothing served");
    }
}

#[test]
fn full_epoch_fidelity_simulates_everything() {
    let window = Experiment::new(epoch_cfg(
        SchemeKind::Base,
        Fidelity::RepresentativeWindow { window_s: 10.0 },
        7,
    ))
    .run();
    let full = Experiment::new(epoch_cfg(SchemeKind::Base, Fidelity::FullEpoch, 7)).run();
    assert_eq!(full.fidelity, "full-epoch");
    // The full-epoch path simulates ~120× the representative traffic
    // (1200 s epochs vs 10 s windows); its event count must reflect that.
    assert!(
        full.sim_events > window.sim_events * 20,
        "full-epoch {} events vs window {}",
        full.sim_events,
        window.sim_events
    );
    // Served totals agree in expectation — extrapolation on one side,
    // exhaustive simulation on the other (flash-crowd spikes make the
    // representative window a noisy estimator, hence the loose band).
    let ratio = full.served_scaled / window.served_scaled;
    assert!((0.5..2.0).contains(&ratio), "served ratio {ratio}");
}

/// The acceptance gate: sub-hour epochs and FullEpoch fidelity keep the
/// serial and parallel engines byte-identical for every scheme.
#[test]
fn sub_hour_and_full_epoch_grids_are_bit_identical_serial_vs_parallel() {
    let configs: Vec<ExperimentConfig> = SchemeKind::ALL
        .into_iter()
        .flat_map(|scheme| {
            [
                Fidelity::RepresentativeWindow { window_s: 10.0 },
                Fidelity::FullEpoch,
            ]
            .into_iter()
            .map(move |f| epoch_cfg(scheme.clone(), f, 23))
        })
        .collect();
    let serial: Vec<u64> = Experiment::run_cells(configs.clone(), 1)
        .iter()
        .map(ExperimentOutcome::digest)
        .collect();
    for threads in [2, 4] {
        let parallel: Vec<u64> = Experiment::run_cells(configs.clone(), threads)
            .iter()
            .map(ExperimentOutcome::digest)
            .collect();
        assert_eq!(
            serial, parallel,
            "{threads}-thread sub-hour/full-epoch grid diverged"
        );
    }
    // The two fidelities are genuinely different experiments.
    assert_ne!(serial[0], serial[1], "window vs full-epoch digests collide");
}

/// Continuous serving at a 2-minute cadence: one unbroken run, not a
/// sequence of cold starts. The acceptance gate for the carry-over: at
/// **every** epoch boundary the cumulative arrivals equal the cumulative
/// served plus dropped plus the backlog crossing that boundary — no request
/// silently vanishes or double-counts at a seam — for all five schemes,
/// and additionally under a reactive fleet (whose resizes force the
/// reconfiguration re-queue path at the seams).
#[test]
fn continuous_epochs_conserve_requests_at_every_boundary() {
    let cells: Vec<(SchemeKind, ScalingPolicy)> = SchemeKind::ALL
        .into_iter()
        .map(|s| (s, ScalingPolicy::Static))
        .chain([
            (SchemeKind::Base, ScalingPolicy::reactive()),
            (SchemeKind::Clover, ScalingPolicy::reactive()),
        ])
        .collect();
    for (scheme, policy) in cells {
        let label = format!("{scheme}/{}", policy.label());
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(scheme)
            .workload(clover::workload::WorkloadKind::flash_crowd())
            .scaling(policy)
            .n_gpus(2)
            .horizon_hours(1.0)
            .control_epoch_s(120.0)
            .fidelity(Fidelity::FullEpoch)
            .sla_headroom(2.0)
            .seed(7)
            .build();
        let out = Experiment::new(cfg).run();
        assert_eq!(out.timeline.len(), 30, "{label}");
        let (mut arrived, mut served, mut dropped) = (0u64, 0u64, 0u64);
        for (i, h) in out.timeline.iter().enumerate() {
            arrived += h.arrived;
            served += h.served;
            dropped += h.dropped;
            assert_eq!(
                arrived,
                served + dropped + h.backlog,
                "{label}: conservation broke at epoch {i}"
            );
        }
        assert!(arrived > 0, "{label}: nothing arrived");
        // The continuity is real: some boundary carries live state (a
        // 2-minute epoch at production load always has work in flight).
        assert!(
            out.timeline.iter().any(|h| h.backlog > 0),
            "{label}: no epoch boundary carried any state — still cold-starting?"
        );
        // The representative-window path, by contrast, always drains.
        assert!(
            out.served_scaled > 0.0,
            "{label}: continuous run served nothing"
        );
    }
}

/// The continuous path stays deterministic: a 2-minute full-epoch grid
/// (all five schemes, carry-over active at every seam) produces
/// byte-identical digests between serial and parallel execution.
#[test]
fn continuous_full_epoch_grid_is_bit_identical_serial_vs_parallel() {
    let configs: Vec<ExperimentConfig> = SchemeKind::ALL
        .into_iter()
        .map(|scheme| {
            ExperimentConfig::builder(Application::ImageClassification)
                .scheme(scheme)
                .workload(clover::workload::WorkloadKind::flash_crowd())
                .n_gpus(2)
                .horizon_hours(1.0)
                .control_epoch_s(120.0)
                .fidelity(Fidelity::FullEpoch)
                .sla_headroom(2.0)
                .seed(23)
                .build()
        })
        .collect();
    let serial: Vec<u64> = Experiment::run_cells(configs.clone(), 1)
        .iter()
        .map(ExperimentOutcome::digest)
        .collect();
    for threads in [2, 4] {
        let parallel: Vec<u64> = Experiment::run_cells(configs.clone(), threads)
            .iter()
            .map(ExperimentOutcome::digest)
            .collect();
        assert_eq!(
            serial, parallel,
            "{threads}-thread continuous full-epoch grid diverged"
        );
    }
}

/// Epoch-scaled search budgets: invisible at the hourly default (the cap
/// sits exactly at the paper's 300 s budget), binding at sub-hour cadences
/// (each invocation's charged live time is capped proportionally).
#[test]
fn search_budget_scales_with_the_epoch_and_not_with_the_default() {
    // Hourly: EpochScaled and Fixed are the same experiment, bit for bit.
    let hourly = |budget: SearchBudget| {
        ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::Clover)
            .n_gpus(4)
            .horizon_hours(6.0)
            .sim_window_s(20.0)
            .search_budget(budget)
            .seed(3)
            .build()
    };
    let scaled = Experiment::new(hourly(SearchBudget::epoch_scaled())).run();
    let fixed = Experiment::new(hourly(SearchBudget::Fixed)).run();
    assert_eq!(
        scaled.digest(),
        fixed.digest(),
        "epoch scaling must be invisible at the hourly default"
    );

    // 10-minute epochs: the scaled budget caps each invocation's charged
    // live time at 600/12 = 50 s (plus at most one in-flight evaluation),
    // where the fixed budget still allows the paper's full 300 s.
    let sub_hour = |budget: SearchBudget| {
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::Clover)
            .n_gpus(4)
            .horizon_hours(2.0)
            .control_epoch_s(600.0)
            .sim_window_s(20.0)
            .search_budget(budget)
            .seed(3)
            .build();
        Experiment::new(cfg).run()
    };
    let scaled = sub_hour(SearchBudget::epoch_scaled());
    let fixed = sub_hour(SearchBudget::Fixed);
    let cap_s = 600.0 / 12.0;
    let max_eval_s = 40.0; // reconfig downtime + one measurement window
    for inv in &scaled.invocations {
        assert!(
            inv.time_spent_s <= cap_s + max_eval_s,
            "scaled invocation spent {} s against a {} s cap",
            inv.time_spent_s,
            cap_s
        );
    }
    assert!(
        scaled.optimization_time_s <= fixed.optimization_time_s,
        "scaled budget ({} s total) should not out-spend the fixed one ({} s)",
        scaled.optimization_time_s,
        fixed.optimization_time_s
    );
    assert!(
        scaled.evals_total() > 0,
        "the capped search must still evaluate candidates"
    );
}

/// A trivial registered scheme: BASE's layout under a custom name, proving
/// the registry path end to end (`Custom` config → registry factory →
/// lifecycle calls → outcome labeled with the custom name).
struct PinnedScheduler {
    deployment: Deployment,
    observed_epochs: usize,
}

impl Scheduler for PinnedScheduler {
    fn name(&self) -> &str {
        "PINNED"
    }

    fn carbon_aware(&self) -> bool {
        false
    }

    fn plan(&mut self, ctx: &mut SchedulerCtx<'_>) -> Decision {
        if self.deployment.n_gpus() != ctx.active_gpus {
            self.deployment = Deployment::base(ctx.family, ctx.active_gpus);
        }
        Decision {
            deployment: self.deployment.clone(),
            run: None,
            note: None,
        }
    }

    fn observe(&mut self, _obs: &clover::core::schedulers::Observation<'_>) {
        self.observed_epochs += 1;
    }
}

#[test]
fn registered_custom_scheme_runs_end_to_end() {
    // Ignore the error: another test in this binary may have registered it
    // first (tests share the process-wide registry).
    let _ = register_scheduler("PINNED", |init| {
        Box::new(PinnedScheduler {
            deployment: Deployment::base(init.family, init.n_gpus),
            observed_epochs: 0,
        })
    });
    assert!(registered_schemes().contains(&"PINNED".to_string()));

    let cfg = ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::Custom("PINNED".into()))
        .n_gpus(2)
        .horizon_hours(2.0)
        .sim_window_s(10.0)
        .seed(3)
        .build();
    let out = Experiment::new(cfg).run();
    assert_eq!(out.scheme, "PINNED");
    assert!(out.served_scaled > 0.0);
    assert_eq!(out.evals_total(), 0, "PINNED never searches online");

    // A custom scheme that mirrors BASE's decisions reproduces BASE's
    // serving numbers exactly: the registry adds no hidden state.
    let base = Experiment::new(
        ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::Base)
            .n_gpus(2)
            .horizon_hours(2.0)
            .sim_window_s(10.0)
            .seed(3)
            .build(),
    )
    .run();
    assert_eq!(out.total_carbon_g, base.total_carbon_g);
    assert_eq!(out.p95_s, base.p95_s);
    assert_eq!(out.sim_events, base.sim_events);
}

#[test]
fn unknown_scheme_name_is_a_clear_error() {
    let family = Application::ImageClassification.family();
    let err = match try_make_scheduler(
        &SchemeKind::Custom("NOT-REGISTERED".into()),
        &family,
        2,
        SaParams::default(),
    ) {
        Ok(_) => panic!("unknown scheme must not resolve"),
        Err(e) => e,
    };
    assert_eq!(err.name, "NOT-REGISTERED");
    assert!(err.known.contains(&"CLOVER".to_string()));
    let msg = err.to_string();
    assert!(
        msg.contains("NOT-REGISTERED") && msg.contains("BASE"),
        "{msg}"
    );
}
