//! Integration tests for the telemetry subsystem.
//!
//! Four guarantees are pinned here:
//!
//! 1. **Telemetry is a strict overlay.** Running the pinned pre-refactor
//!    configurations with the no-op sink *and* with every pillar enabled
//!    reproduces the exact digests `tests/control_plane.rs` records — the
//!    sink never touches RNG, float paths, or event order.
//! 2. **The decision journal is deterministic.** For all five schemes on a
//!    sub-hour `FullEpoch` grid, the journal a parallel grid worker writes
//!    is byte-for-byte the journal the serial run writes.
//! 3. **Conservation checkpoints are honest.** The per-epoch
//!    `conservation` events in the journal match the outcome timeline's
//!    `HourPoint` counters exactly, and the stream closes the
//!    `Σ arrived == Σ served + Σ dropped + backlog` law.
//! 4. **The Prometheus exposition round-trips.** Text rendered by
//!    `MetricRegistry::to_prometheus` parses back sample for sample,
//!    including label escaping.

use clover::core::control::Fidelity;
use clover::core::experiment::{Experiment, ExperimentConfig};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;
use clover::telemetry::{parse_prometheus, MetricRegistry, Telemetry, TelemetrySpec};
use clover::workload::WorkloadKind;

/// The `tests/control_plane.rs` pinned configuration and digests (recorded
/// before the control-plane extraction; the telemetry overlay must keep
/// reproducing them with any sink).
const PINNED_QUICK: [(&str, u64); 5] = [
    ("BASE", 0xA581_0B01_2522_FA2F),
    ("CO2OPT", 0x7471_7784_D531_E3F4),
    ("BLOVER", 0x6D35_A9B2_DB9E_C166),
    ("CLOVER", 0x98C0_B8B2_36D4_3E08),
    ("ORACLE", 0xB87C_862C_AEAB_AD2C),
];

fn quick_cfg(scheme: &str) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::parse(scheme))
        .n_gpus(4)
        .horizon_hours(6.0)
        .sim_window_s(20.0)
        .seed(3)
        .build()
}

/// A sub-hour full-epoch cell: 20-minute epochs under a flash crowd, the
/// densest journal the control plane writes (scaler + conservation every
/// epoch, epoch-scaled search budgets on re-plans).
fn full_epoch_cfg(scheme: &str, seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::parse(scheme))
        .workload(WorkloadKind::flash_crowd())
        .n_gpus(2)
        .horizon_hours(2.0)
        .control_epoch_s(1200.0)
        .fidelity(Fidelity::FullEpoch)
        .seed(seed)
        .build()
}

/// Extract an unsigned-integer field from one JSONL journal line.
fn field_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("field {key} in {line}"))
        + pat.len();
    line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("numeric field {key} in {line}"))
}

#[test]
fn disabled_sink_reproduces_pinned_digests() {
    for (scheme, expected) in PINNED_QUICK {
        let out = Experiment::new(quick_cfg(scheme)).run_with(&mut Telemetry::disabled());
        assert_eq!(
            out.digest(),
            expected,
            "{scheme}: the no-op telemetry sink changed the pinned numbers \
             (got 0x{:016X})",
            out.digest()
        );
    }
}

#[test]
fn fully_enabled_telemetry_is_a_strict_overlay() {
    // Same pinned digests with every pillar on: journal events, metric
    // updates and phase scopes must not perturb a single bit.
    let configs = PINNED_QUICK.iter().map(|(s, _)| quick_cfg(s)).collect();
    let pairs = Experiment::run_cells_with(configs, 1, TelemetrySpec::ALL);
    for ((scheme, expected), (out, report)) in PINNED_QUICK.iter().zip(pairs.iter()) {
        assert_eq!(
            out.digest(),
            *expected,
            "{scheme}: enabling telemetry changed the pinned numbers \
             (got 0x{:016X})",
            out.digest()
        );
        let journal = report.journal.as_ref().expect("journal enabled");
        assert!(!journal.is_empty(), "{scheme}: empty journal");
        assert!(
            report.metrics.is_some() && report.phases.is_some(),
            "{scheme}: missing telemetry pillars"
        );
    }
}

#[test]
fn journal_is_byte_identical_serial_vs_parallel() {
    let configs: Vec<ExperimentConfig> = PINNED_QUICK
        .iter()
        .map(|(s, _)| full_epoch_cfg(s, 3))
        .collect();
    let serial = Experiment::run_cells_with(configs.clone(), 1, TelemetrySpec::JOURNAL);
    let parallel = Experiment::run_cells_with(configs, 4, TelemetrySpec::JOURNAL);
    for ((scheme, _), ((so, sr), (po, pr))) in
        PINNED_QUICK.iter().zip(serial.iter().zip(parallel.iter()))
    {
        assert_eq!(so.digest(), po.digest(), "{scheme}: outcome diverged");
        let sj = sr.journal.as_ref().expect("serial journal");
        let pj = pr.journal.as_ref().expect("parallel journal");
        assert!(!sj.is_empty(), "{scheme}: empty journal");
        assert_eq!(
            sj.as_str(),
            pj.as_str(),
            "{scheme}: journal bytes diverged between serial and parallel runs"
        );
        assert_eq!(sr.journal_digest(), pr.journal_digest());
    }
}

#[test]
fn journal_exposes_the_epoch_scaled_search_budget() {
    // 1200 s epochs scale the paper's 300 s hourly budget to 100 s
    // (SearchBudget::EpochScaled); every `search` event must carry it, so
    // the cadence-aware budget is verifiable from the journal alone.
    let pairs =
        Experiment::run_cells_with(vec![full_epoch_cfg("CLOVER", 3)], 1, TelemetrySpec::JOURNAL);
    let journal = pairs[0].1.journal.as_ref().expect("journal enabled");
    let search_lines: Vec<&str> = journal
        .as_str()
        .lines()
        .filter(|l| l.contains("\"event\":\"search\""))
        .collect();
    assert!(!search_lines.is_empty(), "CLOVER reported no search events");
    for line in &search_lines {
        assert!(
            line.contains("\"budget_s\":100"),
            "search event without the epoch-scaled 100 s budget: {line}"
        );
        let iterations = field_u64(line, "iterations");
        let accepted = field_u64(line, "accepted");
        let rejected = field_u64(line, "rejected");
        assert!(iterations > 0, "search event with zero iterations: {line}");
        // Evaluations = accepted + rejected; the start center is evaluated
        // (and accepted) outside the iteration count, and iterations whose
        // proposal came back empty evaluate nothing.
        assert!(
            accepted + rejected <= iterations + 1,
            "ledger inconsistency: {line}"
        );
    }
}

#[test]
fn conservation_checkpoints_match_the_timeline() {
    // The continuous serving path: 2-minute epochs, state carried across
    // every boundary — the configuration where conservation is non-trivial
    // (backlog crosses epoch seams).
    let cfg = ExperimentConfig::builder(Application::ImageClassification)
        .workload(WorkloadKind::flash_crowd())
        .n_gpus(2)
        .horizon_hours(1.0)
        .control_epoch_s(120.0)
        .fidelity(Fidelity::FullEpoch)
        .sla_headroom(2.0)
        .seed(7)
        .build();
    let mut pairs = Experiment::run_cells_with(vec![cfg], 1, TelemetrySpec::JOURNAL);
    let (out, report) = pairs.remove(0);
    let journal = report.journal.expect("journal enabled");
    let lines: Vec<&str> = journal
        .as_str()
        .lines()
        .filter(|l| l.contains("\"event\":\"conservation\""))
        .collect();
    assert_eq!(
        lines.len(),
        out.timeline.len(),
        "one conservation checkpoint per epoch"
    );
    let mut arrived = 0u64;
    let mut served = 0u64;
    let mut dropped = 0u64;
    let mut closing_backlog = 0u64;
    for (line, point) in lines.iter().zip(out.timeline.iter()) {
        assert_eq!(field_u64(line, "arrived"), point.arrived, "{line}");
        assert_eq!(field_u64(line, "served"), point.served, "{line}");
        assert_eq!(field_u64(line, "dropped"), point.dropped, "{line}");
        assert_eq!(field_u64(line, "backlog"), point.backlog, "{line}");
        arrived += point.arrived;
        served += point.served;
        dropped += point.dropped;
        closing_backlog = point.backlog;
    }
    assert!(arrived > 0, "the crowd arrived");
    assert_eq!(
        arrived,
        served + dropped + closing_backlog,
        "the journal's conservation stream must close the per-boundary law"
    );
}

#[test]
fn prometheus_exposition_round_trips() {
    let mut reg = MetricRegistry::new();
    reg.counter_add("clover_requests_served_total", &[("scheme", "CLOVER")], 42);
    reg.counter_add("clover_requests_served_total", &[("scheme", "BASE")], 7);
    reg.gauge_set("clover_backlog_requests", &[], 3.5);
    // A label value exercising every escape the exposition format defines.
    reg.gauge_set("clover_note_info", &[("note", "a\"b\\c\nd")], 1.0);
    reg.histogram_observe(
        "clover_search_charged_live_seconds",
        &[("scheme", "CLOVER")],
        &[10.0, 100.0],
        42.0,
    );

    let text = reg.to_prometheus();
    let samples = parse_prometheus(&text).expect("own exposition parses");

    let find = |name: &str, labels: &[(&str, &str)]| -> f64 {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .unwrap_or_else(|| panic!("sample {name} {labels:?} in:\n{text}"))
            .value
    };
    assert_eq!(
        find("clover_requests_served_total", &[("scheme", "CLOVER")]),
        42.0
    );
    assert_eq!(
        find("clover_requests_served_total", &[("scheme", "BASE")]),
        7.0
    );
    assert_eq!(find("clover_backlog_requests", &[]), 3.5);
    // The escaped label value round-trips to the original string.
    assert_eq!(find("clover_note_info", &[("note", "a\"b\\c\nd")]), 1.0);
    // Histogram exposition: cumulative buckets plus +Inf, sum and count.
    assert_eq!(
        find(
            "clover_search_charged_live_seconds_bucket",
            &[("scheme", "CLOVER"), ("le", "10")]
        ),
        0.0
    );
    assert_eq!(
        find(
            "clover_search_charged_live_seconds_bucket",
            &[("scheme", "CLOVER"), ("le", "100")]
        ),
        1.0
    );
    assert_eq!(
        find(
            "clover_search_charged_live_seconds_bucket",
            &[("scheme", "CLOVER"), ("le", "+Inf")]
        ),
        1.0
    );
    assert_eq!(
        find(
            "clover_search_charged_live_seconds_sum",
            &[("scheme", "CLOVER")]
        ),
        42.0
    );
    assert_eq!(
        find(
            "clover_search_charged_live_seconds_count",
            &[("scheme", "CLOVER")]
        ),
        1.0
    );
}
