//! Property-based invariants of the serving simulator under arbitrary
//! deployments and loads.
//!
//! Written as deterministic seed sweeps (the container has no registry
//! access for a property-testing framework): random deployments and
//! utilizations are derived from the sweep seed.

use clover::core::schedulers::random_raw_deployment;
use clover::models::zoo::Application;
use clover::models::PerfModel;
use clover::serving::{analytic, ServingSim};
use clover::simkit::{SimDuration, SimRng};

/// Request conservation, latency sanity and energy positivity hold for
/// any random deployment and load.
#[test]
fn window_metrics_invariants() {
    let family = Application::ImageClassification.family();
    let perf = PerfModel::a100();
    for case in 0u64..24 {
        let seed = case * 131 + 11;
        let util_pct = 10 + (case * 97) % 110; // 10..120%
        let mut rng = SimRng::new(seed);
        let d = random_raw_deployment(&family, 3, &mut rng);
        let cap = analytic::estimate(&family, &perf, &d, 1.0).capacity_rps;
        let rate = cap * util_pct as f64 / 100.0;
        let mut sim = ServingSim::new(family.clone(), perf, d.clone(), seed);
        let w = sim.run_window(
            rate,
            SimDuration::from_secs(20.0),
            SimDuration::from_secs(2.0),
        );

        // Conservation: everything that arrived was served or dropped
        // (allow one in-flight boundary case).
        assert!(w.served + w.dropped <= w.arrived + 1);
        let per_variant: u64 = w.per_variant_served.iter().sum();
        assert_eq!(per_variant, w.served);

        if w.served > 0 {
            // Latency ordering: mean <= p95 <= max (histogram estimates are
            // within 1% relative error). A serving window must report a
            // measured tail; only zero-served windows may omit it.
            let p95 = w.p95_latency_s.expect("served window has a p95");
            assert!(w.mean_latency_s <= p95 * 1.02);
            assert!(p95 <= w.max_latency_s * 1.02);
            // Latency cannot undercut the fastest possible service time.
            let fastest = d
                .instances()
                .iter()
                .map(|&(v, s)| perf.service_time(family.variant(v), s).as_secs())
                .fold(f64::INFINITY, f64::min);
            assert!(w.mean_latency_s >= fastest * 0.5);
            // Mixture accuracy lies within the family's range.
            let acc = w.accuracy_pct(&family).unwrap();
            assert!(acc >= family.smallest().accuracy_pct - 1e-9);
            assert!(acc <= family.accuracy_base() + 1e-9);
        }

        // Energy components are non-negative and total power is bounded by
        // the cluster's peak.
        assert!(w.dynamic_energy_j >= 0.0);
        assert!(w.idle_energy_j >= 0.0);
        assert!(w.static_energy_j > 0.0);
        let peak = perf.power.peak_w() * sim.deployment().n_gpus() as f64;
        assert!(w.it_energy_j() / w.span_s <= peak * 1.01);
    }
}

/// The analytic estimator agrees with the DES on stability: if it says
/// a deployment is saturated, the simulator's throughput caps out.
#[test]
fn analytic_stability_matches_des() {
    let family = Application::ImageClassification.family();
    let perf = PerfModel::a100();
    for case in 0u64..16 {
        let seed = case * 53 + 3;
        let mut rng = SimRng::new(seed);
        let d = random_raw_deployment(&family, 2, &mut rng);
        let cap = analytic::estimate(&family, &perf, &d, 1.0).capacity_rps;
        let over = cap * 1.5;
        let est = analytic::estimate(&family, &perf, &d, over);
        assert!(!est.stable);
        let mut sim = ServingSim::new(family.clone(), perf, d, seed);
        let w = sim.run_window(
            over,
            SimDuration::from_secs(20.0),
            SimDuration::from_secs(0.0),
        );
        // Overloaded: cannot complete more than capacity (with slack for
        // the drain at the horizon).
        assert!(w.throughput_rps() <= cap * 1.2);
    }
}
