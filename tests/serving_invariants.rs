//! Property-based invariants of the serving simulator under arbitrary
//! deployments and loads.

use clover::core::schedulers::random_raw_deployment;
use clover::models::zoo::Application;
use clover::models::PerfModel;
use clover::serving::{analytic, ServingSim};
use clover::simkit::{SimDuration, SimRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Request conservation, latency sanity and energy positivity hold for
    /// any random deployment and load.
    #[test]
    fn window_metrics_invariants(seed in 0u64..500, util_pct in 10u32..120) {
        let family = Application::ImageClassification.family();
        let perf = PerfModel::a100();
        let mut rng = SimRng::new(seed);
        let d = random_raw_deployment(&family, 3, &mut rng);
        let cap = analytic::estimate(&family, &perf, &d, 1.0).capacity_rps;
        let rate = cap * util_pct as f64 / 100.0;
        let mut sim = ServingSim::new(family.clone(), perf, d, seed);
        let w = sim.run_window(
            rate,
            SimDuration::from_secs(20.0),
            SimDuration::from_secs(2.0),
        );

        // Conservation: everything that arrived was served or dropped
        // (allow one in-flight boundary case).
        prop_assert!(w.served + w.dropped <= w.arrived + 1);
        let per_variant: u64 = w.per_variant_served.iter().sum();
        prop_assert_eq!(per_variant, w.served);

        if w.served > 0 {
            // Latency ordering: mean <= p95 <= max (histogram estimates are
            // within 1% relative error).
            prop_assert!(w.mean_latency_s <= w.p95_latency_s * 1.02);
            prop_assert!(w.p95_latency_s <= w.max_latency_s * 1.02);
            // Latency cannot undercut the fastest possible service time.
            let fastest = d_fastest(&family, &perf, &mut sim);
            prop_assert!(w.mean_latency_s >= fastest * 0.5);
            // Mixture accuracy lies within the family's range.
            let acc = w.accuracy_pct(&family).unwrap();
            prop_assert!(acc >= family.smallest().accuracy_pct - 1e-9);
            prop_assert!(acc <= family.accuracy_base() + 1e-9);
        }

        // Energy components are non-negative and total power is bounded by
        // the cluster's peak.
        prop_assert!(w.dynamic_energy_j >= 0.0);
        prop_assert!(w.idle_energy_j >= 0.0);
        prop_assert!(w.static_energy_j > 0.0);
        let peak = perf.power.peak_w() * sim.deployment().n_gpus() as f64;
        prop_assert!(w.it_energy_j() / w.span_s <= peak * 1.01);
    }

    /// The analytic estimator agrees with the DES on stability: if it says
    /// a deployment is saturated, the simulator's throughput caps out.
    #[test]
    fn analytic_stability_matches_des(seed in 0u64..200) {
        let family = Application::ImageClassification.family();
        let perf = PerfModel::a100();
        let mut rng = SimRng::new(seed);
        let d = random_raw_deployment(&family, 2, &mut rng);
        let cap = analytic::estimate(&family, &perf, &d, 1.0).capacity_rps;
        let over = cap * 1.5;
        let est = analytic::estimate(&family, &perf, &d, over);
        prop_assert!(!est.stable);
        let mut sim = ServingSim::new(family.clone(), perf, d, seed);
        let w = sim.run_window(
            over,
            SimDuration::from_secs(20.0),
            SimDuration::from_secs(0.0),
        );
        // Overloaded: cannot complete more than capacity (with slack for
        // the drain at the horizon).
        prop_assert!(w.throughput_rps() <= cap * 1.2);
    }
}

fn d_fastest(
    family: &clover::models::ModelFamily,
    perf: &PerfModel,
    sim: &mut ServingSim,
) -> f64 {
    sim.deployment()
        .instances()
        .iter()
        .map(|&(v, s)| perf.service_time(family.variant(v), s).as_secs())
        .fold(f64::INFINITY, f64::min)
}
