//! End-to-end integration tests: the full experiment pipeline across all
//! crates, checking the paper's qualitative orderings at smoke scale.

use clover::core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;

fn run(app: Application, scheme: SchemeKind, n_gpus: usize) -> ExperimentOutcome {
    let cfg = ExperimentConfig::builder(app)
        .scheme(scheme)
        .n_gpus(n_gpus)
        .horizon_hours(6.0)
        .sim_window_s(20.0)
        .seed(11)
        .build();
    Experiment::new(cfg).run()
}

#[test]
fn all_schemes_complete_for_all_apps() {
    for app in Application::ALL {
        for scheme in SchemeKind::ALL {
            let out = run(app, scheme.clone(), 2);
            assert!(out.served_scaled > 0.0, "{app} {scheme}: nothing served");
            assert!(out.total_carbon_g > 0.0);
            assert_eq!(out.timeline.len(), 6);
            assert!(
                out.accuracy_loss_pct >= -1e-9,
                "{app} {scheme}: negative accuracy loss"
            );
        }
    }
}

#[test]
fn carbon_aware_schemes_beat_base_on_carbon() {
    for scheme in [SchemeKind::Co2Opt, SchemeKind::Clover, SchemeKind::Oracle] {
        let out = run(Application::ImageClassification, scheme.clone(), 4);
        assert!(
            out.carbon_saving_pct > 40.0,
            "{scheme}: saving only {:.1}%",
            out.carbon_saving_pct
        );
    }
}

#[test]
fn clover_more_accurate_than_co2opt() {
    let clover = run(Application::ImageClassification, SchemeKind::Clover, 4);
    let co2opt = run(Application::ImageClassification, SchemeKind::Co2Opt, 4);
    assert!(
        clover.accuracy_pct > co2opt.accuracy_pct,
        "clover {:.2}% <= co2opt {:.2}%",
        clover.accuracy_pct,
        co2opt.accuracy_pct
    );
}

#[test]
fn clover_meets_the_sla_base_defines() {
    for app in Application::ALL {
        let out = run(app, SchemeKind::Clover, 4);
        assert!(
            out.sla_met,
            "{app}: p95 {:.1} ms vs SLA {:.1} ms",
            out.p95_s * 1e3,
            out.sla_p95_s * 1e3
        );
    }
}

#[test]
fn oracle_charges_no_optimization_time() {
    let out = run(Application::LanguageModeling, SchemeKind::Oracle, 2);
    assert_eq!(out.optimization_time_s, 0.0);
    assert_eq!(out.evals_total(), 0);
}

#[test]
fn optimization_overhead_is_small() {
    let out = run(Application::ImageClassification, SchemeKind::Clover, 4);
    assert!(
        out.optimization_fraction < 0.10,
        "overhead {:.1}%",
        out.optimization_fraction * 100.0
    );
    assert!(out.evals_total() > 0);
}

#[test]
fn reduced_provisioning_breaks_base_not_clover() {
    // Fig. 15's core claim at smoke scale: with the 10-GPU workload on
    // 2 GPUs, BASE violates the SLA while Clover recovers and holds it.
    let base = {
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::Base)
            .n_gpus(2)
            .reference_gpus(10)
            .horizon_hours(4.0)
            .sim_window_s(20.0)
            .seed(11)
            .build();
        Experiment::new(cfg).run()
    };
    let clover = {
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::Clover)
            .n_gpus(2)
            .reference_gpus(10)
            .horizon_hours(8.0)
            .sim_window_s(20.0)
            .seed(11)
            .build();
        Experiment::new(cfg).run()
    };
    assert!(!base.sla_met, "BASE on 2 GPUs should blow the SLA");
    assert!(
        base.p95_norm_to_base > 2.0,
        "norm {:.2}",
        base.p95_norm_to_base
    );
    // Once Clover has reconfigured away from the cold-start overload, the
    // steady-state hours must meet the SLA (the run-level p95 still carries
    // the recovery transient at this short horizon).
    let steady: Vec<_> = clover.timeline.iter().skip(4).collect();
    assert!(
        steady.iter().all(|h| h.p95_s <= clover.sla_p95_s),
        "Clover steady-state p95s {:?} vs SLA {:.1} ms",
        steady.iter().map(|h| h.p95_s * 1e3).collect::<Vec<_>>(),
        clover.sla_p95_s * 1e3
    );
}

#[test]
fn outcomes_are_deterministic() {
    let a = run(Application::ObjectDetection, SchemeKind::Clover, 2);
    let b = run(Application::ObjectDetection, SchemeKind::Clover, 2);
    assert_eq!(a.total_carbon_g, b.total_carbon_g);
    assert_eq!(a.p95_s, b.p95_s);
    // Outcomes carry their scenario labels for reporting.
    assert_eq!(a.workload, "poisson");
    assert_eq!(a.scheme, "CLOVER");
}

#[test]
fn accuracy_floor_is_respected() {
    let cfg = ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::Clover)
        .n_gpus(4)
        .accuracy_floor(1.0)
        .horizon_hours(6.0)
        .sim_window_s(20.0)
        .seed(13)
        .build();
    let out = Experiment::new(cfg).run();
    assert!(
        out.accuracy_loss_pct < 2.5,
        "floor 1.0% but lost {:.2}%",
        out.accuracy_loss_pct
    );
}

#[test]
fn lambda_extremes_trade_carbon_for_accuracy() {
    let low = {
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::Clover)
            .n_gpus(4)
            .lambda(0.1)
            .constant_ci(100.0)
            .horizon_hours(4.0)
            .sim_window_s(20.0)
            .seed(17)
            .build();
        Experiment::new(cfg).run()
    };
    let high = {
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::Clover)
            .n_gpus(4)
            .lambda(0.9)
            .constant_ci(100.0)
            .horizon_hours(4.0)
            .sim_window_s(20.0)
            .seed(17)
            .build();
        Experiment::new(cfg).run()
    };
    assert!(
        high.carbon_saving_pct >= low.carbon_saving_pct - 3.0,
        "lambda 0.9 saved {:.1}% vs 0.1 {:.1}%",
        high.carbon_saving_pct,
        low.carbon_saving_pct
    );
    assert!(
        low.accuracy_loss_pct <= high.accuracy_loss_pct + 1.0,
        "lambda 0.1 lost {:.2}% vs 0.9 {:.2}%",
        low.accuracy_loss_pct,
        high.accuracy_loss_pct
    );
}
