//! Integration tests for the elastic-fleet (autoscaling) layer.
//!
//! Pins the PR's acceptance criteria end to end: under a diurnal workload
//! the forecast-driven policy powers GPUs down through the trough and cuts
//! total operational carbon versus the paper's static fleet *at equal SLA
//! attainment*, and autoscaled experiment grids remain byte-identical
//! between serial and parallel execution (the scaler consumes no
//! randomness, so thread interleaving has nothing to perturb).

use clover::core::autoscale::ScalingPolicy;
use clover::core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;
use clover::workload::WorkloadKind;

/// One diurnal day on a 4-GPU fleet. The generous SLA headroom keeps both
/// policies comfortably SLA-compliant, so the comparison isolates carbon.
fn diurnal_cfg(scheme: SchemeKind, policy: ScalingPolicy, seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(scheme)
        .workload(WorkloadKind::diurnal())
        .scaling(policy)
        .n_gpus(4)
        .min_gpus(1)
        .horizon_hours(24.0)
        .sim_window_s(10.0)
        .utilization(0.5)
        .sla_headroom(2.0)
        .seed(seed)
        .build()
}

/// The headline claim: forecast scaling emits less carbon than the static
/// fleet under a diurnal swing, while attaining the same SLA verdict and
/// serving the same-quality traffic (BASE layout on both sides, so model
/// quality is held fixed and only the fleet breathes).
#[test]
fn forecast_scaling_cuts_carbon_at_equal_sla() {
    let stat = Experiment::new(diurnal_cfg(SchemeKind::Base, ScalingPolicy::Static, 11)).run();
    let fore = Experiment::new(diurnal_cfg(SchemeKind::Base, ScalingPolicy::forecast(), 11)).run();

    assert_eq!(stat.scaling, "static");
    assert_eq!(fore.scaling, "forecast");
    // Equal SLA attainment (both comfortably within the headroom).
    assert!(stat.sla_met, "static fleet violated its SLA");
    assert!(fore.sla_met, "forecast fleet violated its SLA");
    // Equal served quality: BASE serves the largest variant either way.
    assert_eq!(stat.accuracy_pct, fore.accuracy_pct);
    // The fleet actually breathed...
    assert_eq!(stat.mean_active_gpus, 4.0);
    assert!(
        fore.mean_active_gpus < 3.6,
        "forecast fleet never scaled down: mean active {}",
        fore.mean_active_gpus
    );
    // ...and breathing saves operational carbon.
    assert!(
        fore.total_carbon_g < stat.total_carbon_g * 0.98,
        "forecast {} g >= 98% of static {} g",
        fore.total_carbon_g,
        stat.total_carbon_g
    );
}

/// The active-GPU timeline follows the diurnal swing: scaled down through
/// the trough (rate bottoms at hour 18), fully restored around the peak
/// (hour 6).
#[test]
fn fleet_timeline_tracks_the_diurnal_swing() {
    let out = Experiment::new(diurnal_cfg(SchemeKind::Base, ScalingPolicy::forecast(), 11)).run();
    let active: Vec<u32> = out.timeline.iter().map(|h| h.active_gpus).collect();
    assert_eq!(active.len(), 24);
    let trough_min = active[14..22].iter().min().copied().unwrap();
    let peak_max = active[4..9].iter().max().copied().unwrap();
    assert!(trough_min <= 2, "trough kept {trough_min} GPUs active");
    assert_eq!(peak_max, 4, "peak hours should run the full fleet");
    // Bookkeeping: the outcome's mean matches its own timeline.
    let mean = active.iter().map(|&a| f64::from(a)).sum::<f64>() / active.len() as f64;
    assert!((mean - out.mean_active_gpus).abs() < 1e-12);
}

/// Reactive scaling also saves carbon, but — sizing from the current rate
/// with a provisioning delay — it cannot beat the forecast policy's
/// anticipation under a predictable swing.
#[test]
fn reactive_scaling_saves_but_forecast_anticipates() {
    let reac = Experiment::new(diurnal_cfg(SchemeKind::Base, ScalingPolicy::reactive(), 11)).run();
    let stat = Experiment::new(diurnal_cfg(SchemeKind::Base, ScalingPolicy::Static, 11)).run();
    assert!(reac.total_carbon_g < stat.total_carbon_g);
    assert!(reac.mean_active_gpus < 4.0);
}

/// Digest grid with scaling enabled: all three policies × a search scheme
/// and a static scheme, serial vs parallel, byte for byte. This is the
/// PR's determinism gate — the scaler must stay RNG-free.
#[test]
fn autoscaled_grids_are_bit_identical_serial_vs_parallel() {
    let configs: Vec<ExperimentConfig> = [
        ScalingPolicy::Static,
        ScalingPolicy::reactive(),
        ScalingPolicy::forecast(),
    ]
    .into_iter()
    .flat_map(|policy| {
        [SchemeKind::Clover, SchemeKind::Oracle, SchemeKind::Base]
            .into_iter()
            .map(move |scheme| {
                ExperimentConfig::builder(Application::ImageClassification)
                    .scheme(scheme)
                    // Phase the swing so the trough (and the ramp back up)
                    // fall inside the short horizon: scale-down *and*
                    // scale-up events are both exercised.
                    .workload(WorkloadKind::Diurnal {
                        amplitude_frac: 0.6,
                        period_hours: 24.0,
                        phase_hours: 16.0,
                    })
                    .scaling(policy)
                    .n_gpus(2)
                    .min_gpus(1)
                    .horizon_hours(8.0)
                    .sim_window_s(10.0)
                    .sla_headroom(2.0)
                    .seed(23)
                    .build()
            })
    })
    .collect();

    let serial: Vec<u64> = Experiment::run_cells(configs.clone(), 1)
        .iter()
        .map(ExperimentOutcome::digest)
        .collect();
    for threads in [2, 4] {
        let parallel: Vec<u64> = Experiment::run_cells(configs.clone(), threads)
            .iter()
            .map(ExperimentOutcome::digest)
            .collect();
        assert_eq!(
            serial, parallel,
            "{threads}-thread autoscaled grid diverged"
        );
    }
    // The policies are genuinely different experiments for at least one
    // scheme (otherwise this grid would pin nothing).
    assert_ne!(serial[0], serial[6], "static vs forecast digests collide");
}

/// Autoscaling composes with every scheme: the searching schemes
/// re-optimize onto the resized fleet and still complete sane runs.
#[test]
fn all_schemes_complete_under_forecast_scaling() {
    for scheme in SchemeKind::ALL {
        let cfg = ExperimentConfig::builder(Application::ObjectDetection)
            .scheme(scheme.clone())
            .workload(WorkloadKind::diurnal())
            .scaling(ScalingPolicy::forecast())
            .n_gpus(2)
            .min_gpus(1)
            .horizon_hours(6.0)
            .sim_window_s(10.0)
            .sla_headroom(2.0)
            .seed(5)
            .build();
        let out = Experiment::new(cfg).run();
        assert!(out.served_scaled > 0.0, "{scheme}: nothing served");
        assert!(out.total_carbon_g > 0.0, "{scheme}: no carbon recorded");
        assert!(
            out.timeline.iter().all(|h| h.active_gpus >= 1),
            "{scheme}: fleet fell below the floor"
        );
    }
}
