//! Integration tests for the elastic-fleet (autoscaling) layer.
//!
//! Pins the PR's acceptance criteria end to end: under a diurnal workload
//! the forecast-driven policy powers GPUs down through the trough and cuts
//! total operational carbon versus the paper's static fleet *at equal SLA
//! attainment*, and autoscaled experiment grids remain byte-identical
//! between serial and parallel execution (the scaler consumes no
//! randomness, so thread interleaving has nothing to perturb).

use clover::core::autoscale::{FleetState, Scaler, ScalerConfig, ScalingPolicy};
use clover::core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;
use clover::simkit::SimTime;
use clover::workload::{Workload, WorkloadKind};

/// One diurnal day on a 4-GPU fleet. The generous SLA headroom keeps both
/// policies comfortably SLA-compliant, so the comparison isolates carbon.
fn diurnal_cfg(scheme: SchemeKind, policy: ScalingPolicy, seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(scheme)
        .workload(WorkloadKind::diurnal())
        .scaling(policy)
        .n_gpus(4)
        .min_gpus(1)
        .horizon_hours(24.0)
        .sim_window_s(10.0)
        .utilization(0.5)
        .sla_headroom(2.0)
        .seed(seed)
        .build()
}

/// The headline claim: forecast scaling emits less carbon than the static
/// fleet under a diurnal swing, while attaining the same SLA verdict and
/// serving the same-quality traffic (BASE layout on both sides, so model
/// quality is held fixed and only the fleet breathes).
#[test]
fn forecast_scaling_cuts_carbon_at_equal_sla() {
    let stat = Experiment::new(diurnal_cfg(SchemeKind::Base, ScalingPolicy::Static, 11)).run();
    let fore = Experiment::new(diurnal_cfg(SchemeKind::Base, ScalingPolicy::forecast(), 11)).run();

    assert_eq!(stat.scaling, "static");
    assert_eq!(fore.scaling, "forecast");
    // Equal SLA attainment (both comfortably within the headroom).
    assert!(stat.sla_met, "static fleet violated its SLA");
    assert!(fore.sla_met, "forecast fleet violated its SLA");
    // Equal served quality: BASE serves the largest variant either way.
    assert_eq!(stat.accuracy_pct, fore.accuracy_pct);
    // The fleet actually breathed...
    assert_eq!(stat.mean_active_gpus, 4.0);
    assert!(
        fore.mean_active_gpus < 3.6,
        "forecast fleet never scaled down: mean active {}",
        fore.mean_active_gpus
    );
    // ...and breathing saves operational carbon.
    assert!(
        fore.total_carbon_g < stat.total_carbon_g * 0.98,
        "forecast {} g >= 98% of static {} g",
        fore.total_carbon_g,
        stat.total_carbon_g
    );
}

/// The active-GPU timeline follows the diurnal swing: scaled down through
/// the trough (rate bottoms at hour 18), fully restored around the peak
/// (hour 6).
#[test]
fn fleet_timeline_tracks_the_diurnal_swing() {
    let out = Experiment::new(diurnal_cfg(SchemeKind::Base, ScalingPolicy::forecast(), 11)).run();
    let active: Vec<u32> = out.timeline.iter().map(|h| h.active_gpus).collect();
    assert_eq!(active.len(), 24);
    let trough_min = active[14..22].iter().min().copied().unwrap();
    let peak_max = active[4..9].iter().max().copied().unwrap();
    assert!(trough_min <= 2, "trough kept {trough_min} GPUs active");
    assert_eq!(peak_max, 4, "peak hours should run the full fleet");
    // Bookkeeping: the outcome's mean matches its own timeline.
    let mean = active.iter().map(|&a| f64::from(a)).sum::<f64>() / active.len() as f64;
    assert!((mean - out.mean_active_gpus).abs() < 1e-12);
}

/// Reactive scaling also saves carbon, but — sizing from the current rate
/// with a provisioning delay — it cannot beat the forecast policy's
/// anticipation under a predictable swing.
#[test]
fn reactive_scaling_saves_but_forecast_anticipates() {
    let reac = Experiment::new(diurnal_cfg(SchemeKind::Base, ScalingPolicy::reactive(), 11)).run();
    let stat = Experiment::new(diurnal_cfg(SchemeKind::Base, ScalingPolicy::Static, 11)).run();
    assert!(reac.total_carbon_g < stat.total_carbon_g);
    assert!(reac.mean_active_gpus < 4.0);
}

/// Digest grid with scaling enabled: all three policies × a search scheme
/// and a static scheme, serial vs parallel, byte for byte. This is the
/// PR's determinism gate — the scaler must stay RNG-free.
#[test]
fn autoscaled_grids_are_bit_identical_serial_vs_parallel() {
    let configs: Vec<ExperimentConfig> = [
        ScalingPolicy::Static,
        ScalingPolicy::reactive(),
        ScalingPolicy::forecast(),
    ]
    .into_iter()
    .flat_map(|policy| {
        [SchemeKind::Clover, SchemeKind::Oracle, SchemeKind::Base]
            .into_iter()
            .map(move |scheme| {
                ExperimentConfig::builder(Application::ImageClassification)
                    .scheme(scheme)
                    // Phase the swing so the trough (and the ramp back up)
                    // fall inside the short horizon: scale-down *and*
                    // scale-up events are both exercised.
                    .workload(WorkloadKind::Diurnal {
                        amplitude_frac: 0.6,
                        period_hours: 24.0,
                        phase_hours: 16.0,
                    })
                    .scaling(policy)
                    .n_gpus(2)
                    .min_gpus(1)
                    .horizon_hours(8.0)
                    .sim_window_s(10.0)
                    .sla_headroom(2.0)
                    .seed(23)
                    .build()
            })
    })
    .collect();

    let serial: Vec<u64> = Experiment::run_cells(configs.clone(), 1)
        .iter()
        .map(ExperimentOutcome::digest)
        .collect();
    for threads in [2, 4] {
        let parallel: Vec<u64> = Experiment::run_cells(configs.clone(), threads)
            .iter()
            .map(ExperimentOutcome::digest)
            .collect();
        assert_eq!(
            serial, parallel,
            "{threads}-thread autoscaled grid diverged"
        );
    }
    // The policies are genuinely different experiments for at least one
    // scheme (otherwise this grid would pin nothing).
    assert_ne!(serial[0], serial[6], "static vs forecast digests collide");
}

/// Seed-sweep property tests for the pre-warm policy (the repo's
/// deterministic stand-in for proptest, see ROADMAP "Offline stubs"): each
/// seed derives a different flash-crowd workload, fleet geometry, and
/// cooldown/drain configuration, and every derived scenario must satisfy
/// the policy's invariants:
///
/// 1. the fleet partition always accounts for every provisioned GPU and
///    never exceeds `n_gpus`;
/// 2. powered capacity is **monotone non-decreasing ahead of a forecast
///    ramp** — from the step where the lookahead first sees the spike to
///    the end of its plateau, the policy may only hold or grow;
/// 3. the active floor is respected, cooldown spaces scaling actions, and
///    draining boards are never re-conscripted mid-drain.
#[test]
fn prewarm_seed_sweep_properties() {
    for seed in 0u64..16 {
        // Deterministic parameter derivation: small fleets to large, weak
        // spikes to violent ones, cooldowns and drains on and off.
        let n_gpus = 3 + (seed % 4) as usize; // 3..=6
        let cap_rps = 30.0 + (seed % 5) as f64 * 10.0; // 30..=70
        let base_rps = cap_rps * 0.9; // calm ≈ 1 GPU's load
        let spike_mult = 2.5 + (seed % 3) as f64; // 2.5..=4.5
        let cooldown = (seed % 2) as u32;
        let drain = 1 + (seed % 3) as u32;
        let workload = Workload::new(
            WorkloadKind::FlashCrowd {
                spike_mult,
                period_hours: 2.0,
                ramp_s: 120.0,
                hold_s: 600.0,
            },
            base_rps,
        );
        let lookahead_h = 0.25;
        let mut cfg = ScalerConfig::new(
            ScalingPolicy::PreWarm {
                lookahead_hours: lookahead_h,
            },
            1,
            n_gpus,
            cap_rps,
        );
        cfg.cooldown_epochs = cooldown;
        cfg.drain_epochs = drain;
        let mut scaler = Scaler::new(cfg);

        let epoch_s = 120.0;
        let steps = (3.0 * 3600.0 / epoch_s) as usize; // 1.5 spike periods
        let fleet: Vec<FleetState> = (0..steps)
            .map(|i| scaler.step(SimTime::from_secs(i as f64 * epoch_s), &workload.forecast()))
            .collect();

        let label = format!("seed {seed} (n={n_gpus}, cap={cap_rps}, mult={spike_mult})");
        // (1) Partition closure and bounds, every step.
        for (i, f) in fleet.iter().enumerate() {
            assert_eq!(
                f.active + f.warming + f.draining + f.off,
                n_gpus,
                "{label}: partition leaked at step {i}: {f:?}"
            );
            assert!(f.powered() <= n_gpus, "{label}: overshoot at step {i}");
            assert!(f.active >= 1, "{label}: fell below the floor at step {i}");
        }
        // (2) Monotone non-decreasing powered capacity ahead of the ramp:
        // the spike opens at 3600 s; the lookahead sees it from
        // 3600 - lookahead. Give the first visible step one epoch to act
        // (plus the cooldown if one is configured), then demand monotone
        // growth or hold until the plateau ends.
        let visible = ((3600.0 - lookahead_h * 3600.0) / epoch_s).ceil() as usize + 1;
        let plateau_end = ((3600.0 + 120.0 + 600.0) / epoch_s) as usize;
        for i in visible..plateau_end {
            assert!(
                fleet[i + 1].powered() >= fleet[i].powered(),
                "{label}: powered capacity shrank ahead of/inside the spike at step {}:
                 {:?} -> {:?}",
                i,
                fleet[i],
                fleet[i + 1]
            );
        }
        // The spike was actually answered: by the plateau the powered
        // (active + warming) capacity either absorbs the forecast peak
        // below the scale-up threshold — the point where the policy
        // correctly stops growing — or the whole fleet is committed.
        let peak_rps = workload.max_rate();
        let at_plateau = &fleet[(3720.0 / epoch_s) as usize];
        let powered_serving = at_plateau.active + at_plateau.warming;
        assert!(
            peak_rps <= powered_serving as f64 * cap_rps * 0.8 + 1e-9 || powered_serving == n_gpus,
            "{label}: plateau peak {peak_rps} req/s outruns the powered fleet {at_plateau:?}"
        );
        // (3a) Cooldown spaces scaling *actions* (new warming batches or
        // retirements — observable as warming growth or active shrink).
        let mut last_action: Option<usize> = None;
        for i in 1..fleet.len() {
            let grew = fleet[i].warming > fleet[i - 1].warming;
            let shrank = fleet[i].active < fleet[i - 1].active;
            if grew || shrank {
                if let Some(prev) = last_action {
                    assert!(
                        i - prev > cooldown as usize,
                        "{label}: actions at steps {prev} and {i} violate a \
                         {cooldown}-epoch cooldown"
                    );
                }
                last_action = Some(i);
            }
        }
        // (3b) Draining boards are never re-conscripted: while anything is
        // draining, active + warming may only grow out of genuinely `off`
        // boards, so powered() never exceeds the provisioned count (checked
        // above) *and* the draining count itself never jumps upward while
        // warming grows in the same step (a board cannot be in two states).
        for w in fleet.windows(2) {
            if w[1].warming > w[0].warming {
                assert!(
                    w[1].draining <= w[0].draining,
                    "{label}: a draining board was conscripted: {:?} -> {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

/// The pre-warm acceptance gate (`fig_flashcrowd`'s cells 5 vs 7, scaled
/// down): under a forecastable flash crowd served continuously at a
/// 2-minute cadence, the pre-warm policy meets the SLA at **no more
/// carbon than the reactive loop** — the lookahead has the fleet warm
/// before each ramp, and forecast insurance lets it run lean in between.
#[test]
fn prewarm_meets_the_flash_crowd_sla_at_no_more_carbon_than_reactive() {
    let run = |policy: ScalingPolicy| {
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(SchemeKind::Base)
            .workload(WorkloadKind::FlashCrowd {
                spike_mult: 2.5,
                period_hours: 2.0,
                ramp_s: 300.0,
                hold_s: 1800.0,
            })
            .scaling(policy)
            .control_epoch_s(120.0)
            .fidelity(clover::core::control::Fidelity::FullEpoch)
            .n_gpus(8)
            .min_gpus(2)
            .horizon_hours(6.0)
            .utilization(0.4)
            .sla_headroom(2.2)
            .seed(2023)
            .build();
        Experiment::new(cfg).run()
    };
    let reactive = run(ScalingPolicy::reactive());
    let prewarm = run(ScalingPolicy::PreWarm {
        lookahead_hours: 0.075,
    });
    assert!(reactive.sla_met, "reactive baseline lost the crowd");
    assert!(
        prewarm.sla_met,
        "prewarm missed the SLA: p95/sla {:.2}",
        prewarm.p95_s / prewarm.sla_p95_s
    );
    assert!(
        prewarm.total_carbon_g <= reactive.total_carbon_g,
        "prewarm burned more carbon ({} g) than the reactive loop ({} g)",
        prewarm.total_carbon_g,
        reactive.total_carbon_g
    );
    // The saving has a mechanism: a leaner mean fleet, not an accounting
    // artifact — and the crowd is still answered (the full fleet shows up).
    assert!(
        prewarm.mean_active_gpus < reactive.mean_active_gpus,
        "prewarm fleet {} not leaner than reactive {}",
        prewarm.mean_active_gpus,
        reactive.mean_active_gpus
    );
    assert!(
        prewarm.timeline.iter().any(|h| h.active_gpus == 8),
        "prewarm never brought the full fleet to a crowd"
    );
}

/// Autoscaling composes with every scheme: the searching schemes
/// re-optimize onto the resized fleet and still complete sane runs.
#[test]
fn all_schemes_complete_under_forecast_scaling() {
    for scheme in SchemeKind::ALL {
        let cfg = ExperimentConfig::builder(Application::ObjectDetection)
            .scheme(scheme.clone())
            .workload(WorkloadKind::diurnal())
            .scaling(ScalingPolicy::forecast())
            .n_gpus(2)
            .min_gpus(1)
            .horizon_hours(6.0)
            .sim_window_s(10.0)
            .sla_headroom(2.0)
            .seed(5)
            .build();
        let out = Experiment::new(cfg).run();
        assert!(out.served_scaled > 0.0, "{scheme}: nothing served");
        assert!(out.total_carbon_g > 0.0, "{scheme}: no carbon recorded");
        assert!(
            out.timeline.iter().all(|h| h.active_gpus >= 1),
            "{scheme}: fleet fell below the floor"
        );
    }
}
