//! Regression tests for replaying a checked-in production-style trace
//! (`data/prod_trace_1h.csv`) through the full experiment stack — the
//! ROADMAP "Real traces" item. The CSV is the contract: parse it with
//! `ArrivalTrace::read_csv`, bind it as a `WorkloadKind::Replay`, and the
//! whole control loop (calibration, scheduling, autoscaling, carbon
//! accounting) must run deterministically on top.

use clover::core::control::Fidelity;
use clover::core::experiment::{Experiment, ExperimentConfig};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;
use clover::workload::{ArrivalTrace, WorkloadKind};

fn checked_in_trace() -> ArrivalTrace {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/prod_trace_1h.csv");
    ArrivalTrace::read_csv(path).expect("checked-in trace parses")
}

#[test]
fn checked_in_trace_has_the_documented_shape() {
    let trace = checked_in_trace();
    assert_eq!(trace.span_s(), 3600.0, "one recorded hour");
    assert!(
        trace.len() > 10_000,
        "trace unexpectedly small: {} arrivals",
        trace.len()
    );
    // The half-hour flash burst documented in data/README.md: the
    // empirical rate mid-burst runs well above the recording's mean.
    let mean = trace.mean_rps();
    let burst = trace.empirical_rate_at(1900.0, false);
    let calm = trace.empirical_rate_at(600.0, false);
    assert!(
        burst > mean * 2.0,
        "burst rate {burst} vs mean {mean} — did the trace change?"
    );
    assert!(calm < burst / 2.0, "calm {calm} vs burst {burst}");
    // Round-tripping the CSV reproduces the trace exactly (the file uses
    // fixed-precision decimals, which Rust's float parsing round-trips).
    let back = ArrivalTrace::from_csv(&trace.to_csv()).expect("round-trip parses");
    assert_eq!(trace, back);
}

fn replay_cfg(fidelity: Fidelity, seed: u64) -> ExperimentConfig {
    let builder = ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::Clover)
        .workload(WorkloadKind::Replay {
            trace: checked_in_trace(),
            looping: true,
        })
        .n_gpus(2)
        .horizon_hours(2.0)
        .control_epoch_s(1200.0)
        .seed(seed);
    match fidelity {
        Fidelity::RepresentativeWindow { .. } => builder.sim_window_s(10.0).build(),
        Fidelity::FullEpoch => builder.fidelity(Fidelity::FullEpoch).build(),
    }
}

#[test]
fn replayed_trace_drives_a_full_experiment_deterministically() {
    let run = || {
        Experiment::new(replay_cfg(
            Fidelity::RepresentativeWindow { window_s: 10.0 },
            7,
        ))
        .run()
    };
    let out = run();
    assert_eq!(out.workload, "replay");
    assert!(out.served_scaled > 0.0, "replay served nothing");
    assert!(out.total_carbon_g > 0.0);
    assert!(out.evals_total() > 0, "CLOVER never searched under replay");
    // Same seed, same trace, same numbers — replay adds no hidden state.
    assert_eq!(out.digest(), run().digest());
}

#[test]
fn replayed_trace_survives_continuous_full_epoch_serving() {
    // The replay's bursts straddle 20-minute epoch boundaries once the
    // recording is rescaled to the derived base rate; continuous serving
    // must conserve every replayed request across those seams.
    let out = Experiment::new(replay_cfg(Fidelity::FullEpoch, 7)).run();
    assert_eq!(out.fidelity, "full-epoch");
    assert!(out.served_scaled > 0.0);
    let arrived: u64 = out.timeline.iter().map(|h| h.arrived).sum();
    let served: u64 = out.timeline.iter().map(|h| h.served).sum();
    let dropped: u64 = out.timeline.iter().map(|h| h.dropped).sum();
    let final_backlog = out.timeline.last().expect("non-empty timeline").backlog;
    assert!(arrived > 0);
    assert_eq!(
        arrived,
        served + dropped + final_backlog,
        "a replayed request vanished at an epoch seam"
    );
}
