//! Capacity planning with Clover (the paper's Fig. 15 scenario).
//!
//! The question a datacenter operator actually asks: "can I hand back some
//! of these A100s?" BASE needs all ten GPUs to hold its p95; Clover's
//! partitioning and mixed-quality serving hold the *same* SLA with a
//! fraction of the hardware — which also avoids the embodied carbon of the
//! machines you no longer rack.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use clover::core::experiment::{Experiment, ExperimentConfig};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;

fn main() {
    let app = Application::ImageClassification;
    println!("Provisioning sweep for {app} (workload and SLA fixed at the 10-GPU BASE):");
    println!(
        "{:>6} {:>10} {:>22} {:>22}",
        "GPUs", "scheme", "p95 (x BASE, 10 GPUs)", "verdict"
    );
    for n_gpus in [10usize, 4, 2] {
        for scheme in [SchemeKind::Base, SchemeKind::Clover] {
            let cfg = ExperimentConfig::builder(app)
                .scheme(scheme)
                .n_gpus(n_gpus)
                .reference_gpus(10)
                .horizon_hours(8.0)
                .sim_window_s(60.0)
                .seed(2023)
                .build();
            let out = Experiment::new(cfg).run();
            // Steady-state tail: runs cold-start from the BASE layout, so a
            // reduced cluster is overloaded until the first reconfiguration.
            let steady = out
                .timeline
                .iter()
                .skip(out.timeline.len() / 4)
                .map(|h| h.p95_s)
                .fold(0.0f64, f64::max);
            let norm_val = steady / out.base_p95_s;
            let norm = if norm_val > 3.0 {
                "> 3.00".to_string()
            } else {
                format!("{norm_val:>6.2}")
            };
            println!(
                "{:>6} {:>10} {:>22} {:>22}",
                n_gpus,
                out.scheme,
                norm,
                if steady <= out.sla_p95_s {
                    "meets SLA"
                } else {
                    "violates SLA"
                }
            );
        }
    }
    println!();
    println!("Clover keeps the 10-GPU service objectives on a fraction of the fleet;");
    println!("BASE cannot shed a single GPU without blowing through the tail target.");
}
