//! Driving the Clover control loop by hand.
//!
//! This example wires the pieces together the way the paper's Fig. 5 does:
//! a carbon monitor watching a duck-curve grid, a live evaluator serving
//! Poisson traffic, and the Clover scheduler re-optimizing whenever the
//! intensity moves more than 5%. It prints each invocation as it happens so
//! you can watch Clover trade accuracy for carbon as solar ramps in and
//! out.
//!
//! ```sh
//! cargo run --release --example carbon_aware_serving
//! ```

use clover::carbon::{CarbonMonitor, Region};
use clover::core::objective::Objective;
use clover::core::schedulers::{make_scheduler, SchedulerCtx, SchemeKind};
use clover::core::{DesEvaluator, SaParams};
use clover::models::zoo::Application;
use clover::models::PerfModel;
use clover::serving::{analytic, Deployment};
use clover::simkit::{SimRng, SimTime};
use clover::workload::Workload;

fn main() {
    let app = Application::LanguageModeling;
    let family = app.family();
    let perf = PerfModel::a100();
    let n_gpus = 6;

    // Workload and SLA from the BASE deployment, as in the paper.
    let base = Deployment::base(&family, n_gpus);
    let capacity = analytic::estimate(&family, &perf, &base, 1.0).capacity_rps;
    let rate = capacity * 0.65;
    let est = analytic::estimate(&family, &perf, &base, rate);
    let sla = est.p95_latency_s * 1.05;

    // A 24-hour duck-curve trace and the 5% monitor.
    let trace = Region::CisoMarch.trace(24, 11);
    let c_base = Objective::carbon_per_request_g(est.energy_per_request_j, trace.mean());
    let objective = Objective::new(family.accuracy_base(), c_base, sla);
    let mut monitor = CarbonMonitor::with_default_threshold(trace);

    let mut scheduler = make_scheduler(&SchemeKind::Clover, &family, n_gpus, SaParams::default());
    let mut evaluator = DesEvaluator::new(family.clone(), perf, rate, base, 99);
    let mut rng = SimRng::new(5);
    let workload = Workload::poisson(rate);

    println!(
        "serving {} at {rate:.0} req/s on {n_gpus} GPUs, SLA p95 <= {:.0} ms",
        app,
        sla * 1e3
    );
    println!();
    for hour in 0..24 {
        let t = SimTime::from_hours(hour as f64);
        let event = monitor.observe(t);
        if hour == 0 || event.triggered {
            let mut ctx = SchedulerCtx {
                family: &family,
                perf: &perf,
                objective: &objective,
                ci: event.current,
                now: t,
                active_gpus: n_gpus,
                workload: &workload,
                evaluator: &mut evaluator,
                rng: &mut rng,
            };
            let decision = scheduler.plan(&mut ctx);
            monitor.acknowledge(event.current);
            let run = decision.run.expect("clover records runs");
            println!(
                "{hour:>2}h  ci={:>5.0} gCO2/kWh  re-optimized: {} evals, {:>5.1}s, best f = {:+.2}, instances = {}",
                event.current.g_per_kwh(),
                run.evals.len(),
                run.time_spent_s,
                run.best_f,
                decision.deployment.n_instances(),
            );
            evaluator.apply(decision.deployment);
        } else {
            println!(
                "{hour:>2}h  ci={:>5.0} gCO2/kWh  (drift {:.1}% < 5%, keep configuration)",
                event.current.g_per_kwh(),
                event.drift * 100.0
            );
        }
    }
}
