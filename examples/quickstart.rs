//! Quickstart: run Clover against BASE for a few simulated hours and print
//! what it saved.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clover::carbon::Region;
use clover::core::experiment::{Experiment, ExperimentConfig};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;

fn main() {
    let config = ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::Clover)
        .region(Region::CisoMarch)
        .n_gpus(4)
        .horizon_hours(12.0)
        .sim_window_s(60.0)
        .seed(7)
        .build();

    let experiment = Experiment::new(config);
    println!(
        "workload: {:.0} req/s Poisson, SLA p95 <= {:.1} ms",
        experiment.rate_rps,
        experiment.objective.l_tail_s * 1e3
    );

    let outcome = experiment.run();
    println!();
    println!(
        "after {:.0} simulated hours on the {} trace:",
        outcome.horizon_hours, outcome.trace
    );
    println!(
        "  carbon saved vs BASE:   {:6.1} %",
        outcome.carbon_saving_pct
    );
    println!(
        "  accuracy loss vs BASE:  {:6.2} %",
        outcome.accuracy_loss_pct
    );
    println!(
        "  p95 latency:            {:6.1} ms ({}; {:.2}x BASE)",
        outcome.p95_s * 1e3,
        if outcome.sla_met {
            "meets SLA"
        } else {
            "VIOLATES SLA"
        },
        outcome.p95_norm_to_base
    );
    println!(
        "  optimization overhead:  {:6.2} % of the horizon ({} invocations, {} evaluations)",
        outcome.optimization_fraction * 100.0,
        outcome.invocations.len(),
        outcome.evals_total()
    );
}
