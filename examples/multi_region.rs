//! Where should the green replica go? Comparing grids and seasons.
//!
//! Runs the same Clover-managed service against the three grid traces of
//! the paper (California in March and September, Great Britain in March)
//! and reports absolute carbon, not just relative savings — the numbers a
//! sustainability report would quote.
//!
//! ```sh
//! cargo run --release --example multi_region
//! ```

use clover::carbon::estimate::SavingsEstimate;
use clover::carbon::Region;
use clover::core::experiment::{Experiment, ExperimentConfig};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;

fn main() {
    let app = Application::LanguageModeling;
    println!("Clover serving {app} for 24 simulated hours, per region:");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>14}",
        "region", "kg CO2", "saved %", "acc loss %", "car-km avoided"
    );
    for region in Region::ALL {
        let cfg = ExperimentConfig::builder(app)
            .scheme(SchemeKind::Clover)
            .region(region)
            .n_gpus(6)
            .horizon_hours(24.0)
            .sim_window_s(60.0)
            .seed(31)
            .build();
        let out = Experiment::new(cfg).run();
        // Scale the measured per-request saving to this run's daily volume.
        let daily_requests = out.rate_rps * 24.0 * 3600.0;
        let est =
            SavingsEstimate::from_per_request(out.saving_g_per_request.max(0.0), daily_requests);
        println!(
            "{:<22} {:>12.2} {:>12.1} {:>12.2} {:>14.1}",
            region.to_string(),
            out.total_carbon_g / 1e3,
            out.carbon_saving_pct,
            out.accuracy_loss_pct,
            est.gasoline_car_km
        );
    }
    println!();
    println!("Wind-heavy grids (ESO) reward carbon-awareness differently from solar");
    println!("duck curves (CISO): the controller re-optimizes on each >5% swing.");
}
