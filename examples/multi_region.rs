//! One service, three grids: the global router end to end.
//!
//! Stands up a regional fleet on each of the paper's grid traces
//! (California in March and September, Great Britain in March) and lets
//! the global router split live traffic across them each control epoch,
//! once per routing policy. The interesting comparison is the carbon-aware
//! policies against `uniform` — the latter *is* per-region-local serving,
//! each region keeping its origin share of traffic.
//!
//! Regions run the carbon-unaware `Base` scheme locally so the table
//! isolates what *spatial* arbitrage alone buys; `fig_georouting` shows
//! the interaction with Clover's local (temporal) adaptation, which
//! harvests most of the same dips.
//!
//! ```sh
//! cargo run --release --example multi_region
//! ```

use clover::core::autoscale::ScalingPolicy;
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;
use clover::router::{registered_route_policies, GlobalRouter, RouterConfig};

fn main() {
    let app = Application::LanguageModeling;
    let policies = registered_route_policies();
    println!("Global router serving {app} across 3 regions for 12 simulated hours:");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>9} {:>10} {:>9}",
        "policy", "kg CO2", "p95 (s)", "SLA", "migrated", "mean gpus", "weights"
    );
    let mut uniform_carbon = None;
    for policy in &policies {
        let cfg = RouterConfig::builder(app)
            .policy(policy.clone())
            .scheme(SchemeKind::Base)
            .n_gpus_per_region(4)
            .min_gpus(1)
            .scaling(ScalingPolicy::reactive())
            .horizon_hours(12.0)
            .utilization(0.6)
            .sla_headroom(2.0)
            .seed(31)
            .build();
        let out = GlobalRouter::new(cfg).run();
        assert_eq!(
            out.conservation_leak, 0,
            "global conservation must hold for {policy}"
        );
        assert_eq!(out.boundary_leak, 0, "boundary law must hold for {policy}");
        if policy == "uniform" {
            uniform_carbon = Some(out.total_carbon_g);
        }
        let weights = out
            .mean_weights
            .iter()
            .map(|w| format!("{w:.2}"))
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{:<16} {:>10.2} {:>10.3} {:>8} {:>9} {:>10.1} {:>9}",
            out.policy,
            out.total_carbon_g / 1e3,
            out.p95_s,
            if out.sla_met { "met" } else { "MISS" },
            out.migrated_requests,
            out.mean_active_gpus,
            weights
        );
    }
    if let Some(base) = uniform_carbon {
        println!();
        println!(
            "uniform == per-region-local serving ({:.2} kg CO2); carbon-aware",
            base / 1e3
        );
        println!("routing chases clean energy across grids whose curves are out of phase.");
    }
}
