//! The control-plane API end to end: a custom scheme registered by name,
//! driven on a sub-hour control cadence with full-epoch fidelity.
//!
//! Demonstrates the three pieces `docs/control-plane.md` describes:
//!
//! - **Open scheduler registry** — `ANALYTIC`, a ~30-line scheme that
//!   argmaxes the paper's objective over the standardized configuration
//!   space using the zero-cost M/M/c estimate instead of live DES
//!   measurement (a model-based counterpart to ORACLE), is registered at
//!   runtime and addressed from an ordinary `ExperimentConfig` — no core
//!   enum to extend.
//! - **Sub-hour control epochs** — the loop ticks every 15 minutes while
//!   the carbon trace stays hourly.
//! - **Fidelity** — the same cells are run with the paper's representative
//!   window and with `FullEpoch` (every arrival of every epoch simulated),
//!   showing what burst sampling does to the measured numbers under a
//!   bursty MMPP workload.
//!
//! Run with: `cargo run --release --example control_plane`

use clover::core::control::Fidelity;
use clover::core::experiment::{Experiment, ExperimentConfig};
use clover::core::objective::MeasuredPoint;
use clover::core::schedulers::{
    enumerate_standardized, register_scheduler, Decision, Observation, Scheduler, SchedulerCtx,
    SchemeKind,
};
use clover::models::zoo::Application;
use clover::serving::{analytic, Deployment};
use clover::workload::WorkloadKind;

/// A model-based scheme: every invocation, rank the standardized space by
/// the paper's objective at the current carbon intensity — using the
/// zero-cost analytic (M/M/c) estimate instead of ORACLE's offline DES
/// profile or CLOVER's charged live measurements — and deploy the best
/// SLA-compliant entry. No optimization time is charged because nothing
/// touches live traffic.
struct AnalyticScheduler {
    plans: u32,
    epochs_observed: u32,
}

impl Scheduler for AnalyticScheduler {
    fn name(&self) -> &str {
        "ANALYTIC"
    }

    fn plan(&mut self, ctx: &mut SchedulerCtx<'_>) -> Decision {
        self.plans += 1;
        let rate = ctx.workload.planning_rate_at(ctx.now);
        let deployment = enumerate_standardized(ctx.family, ctx.active_gpus)
            .into_iter()
            .filter_map(|d| {
                let est = analytic::estimate(ctx.family, ctx.perf, &d, rate);
                if !est.stable || est.p95_latency_s > ctx.objective.l_tail_s {
                    return None;
                }
                let acc = clover::models::capacity_weighted_accuracy(
                    ctx.family,
                    ctx.perf,
                    &d.instances(),
                )?;
                let point = MeasuredPoint {
                    accuracy_pct: acc,
                    energy_per_request_j: est.energy_per_request_j,
                    p95_latency_s: est.p95_latency_s,
                };
                Some((d, ctx.objective.f(&point, ctx.ci)))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objective"))
            .map(|(d, _)| d)
            .unwrap_or_else(|| Deployment::base(ctx.family, ctx.active_gpus));
        Decision {
            deployment,
            run: None,
            note: None,
        }
    }

    fn observe(&mut self, _obs: &Observation<'_>) {
        // A real scheme would learn from the served window here (see
        // ORACLE's per-rate-band profiles); this one just counts.
        self.epochs_observed += 1;
    }
}

fn config(scheme: SchemeKind, fidelity: Fidelity) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(scheme)
        .workload(WorkloadKind::mmpp())
        .n_gpus(2)
        .horizon_hours(6.0)
        .control_epoch_s(900.0) // 15-minute control loop
        .fidelity(fidelity)
        // MMPP bursts hit ~2.5× the mean rate: leave burst headroom on the
        // fleet and on the tail budget, or every BASE-layout epoch drowns.
        .utilization(0.25)
        .sla_headroom(2.0)
        .seed(7)
        .build()
}

fn main() {
    register_scheduler("ANALYTIC", |_| {
        Box::new(AnalyticScheduler {
            plans: 0,
            epochs_observed: 0,
        })
    })
    .expect("fresh name");

    println!("scheme      fidelity     carbon_save%  acc_loss%  p95/sla  epochs");
    for scheme in [SchemeKind::Clover, SchemeKind::Custom("ANALYTIC".into())] {
        for fidelity in [
            Fidelity::RepresentativeWindow { window_s: 20.0 },
            Fidelity::FullEpoch,
        ] {
            let out = Experiment::new(config(scheme.clone(), fidelity)).run();
            println!(
                "{:<11} {:<12} {:>12.1} {:>10.2} {:>8.2} {:>7}",
                out.scheme,
                out.fidelity,
                out.carbon_saving_pct,
                out.accuracy_loss_pct,
                out.p95_s / out.sla_p95_s,
                out.timeline.len(),
            );
        }
    }
    println!();
    println!(
        "ANALYTIC was registered at runtime and addressed as SchemeKind::Custom; the 15-minute \
         cadence gives 24 control epochs per 6 h run, and full-epoch fidelity samples the MMPP \
         bursts the 20 s representative window mostly misses."
    );
}
