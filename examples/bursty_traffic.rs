//! Does carbon-aware serving survive bursty traffic?
//!
//! The paper evaluates Clover under smooth open-loop Poisson arrivals; real
//! fleets get flash crowds and on/off bursts. This example runs CLOVER and
//! BASE under three traffic scenarios with the *same* long-run demand —
//! Poisson, a 4× Markov-modulated burst process, and a 5× flash crowd every
//! two hours — and compares carbon savings and tail latency.
//!
//! ```sh
//! cargo run --release --example bursty_traffic
//! ```

use clover::core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover::core::schedulers::SchemeKind;
use clover::models::zoo::Application;
use clover::workload::WorkloadKind;

fn run(scheme: SchemeKind, workload: WorkloadKind) -> ExperimentOutcome {
    let cfg = ExperimentConfig::builder(Application::ImageClassification)
        .scheme(scheme)
        .workload(workload)
        .n_gpus(4)
        .horizon_hours(12.0)
        .sim_window_s(60.0)
        .seed(23)
        .build();
    Experiment::new(cfg).run()
}

fn main() {
    let scenarios = [
        ("poisson", WorkloadKind::Poisson),
        ("mmpp 4x bursts", WorkloadKind::mmpp()),
        ("flash crowd 5x", WorkloadKind::flash_crowd()),
    ];

    println!("CLOVER vs BASE for 12 simulated hours, same mean demand per scenario:");
    println!(
        "{:<16} {:>8} {:>12} {:>14} {:>10} {:>6}",
        "scenario", "scheme", "carbon kg", "saved vs BASE", "p95 ms", "SLA"
    );
    for (label, kind) in scenarios {
        for scheme in [SchemeKind::Base, SchemeKind::Clover] {
            let out = run(scheme, kind.clone());
            println!(
                "{:<16} {:>8} {:>12.3} {:>13.1}% {:>10.1} {:>6}",
                label,
                out.scheme,
                out.total_carbon_g / 1e3,
                out.carbon_saving_pct,
                out.p95_s * 1e3,
                if out.sla_met { "ok" } else { "VIOL" }
            );
        }
    }
    println!();
    println!(
        "Bursts concentrate the same mean demand into short spikes that run \
         well past the cluster's capacity, so BASE — provisioned for the \
         mean — blows its Poisson-derived SLA whenever a measurement window \
         catches a burst. The carbon-aware controller re-optimizes on every \
         SLA violation (its Sec. 4.2 trigger), which keeps its own tail in \
         check while still cutting carbon."
    );
}
